#include "ebpf/analyzer.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <limits>
#include <optional>

#include "ebpf/cfg.hpp"
#include "ebpf/opcodes.hpp"
#include "ebpf/verifier.hpp"

namespace xb::ebpf {

namespace {

constexpr std::int64_t kValMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kValMax = std::numeric_limits<std::int64_t>::max();

std::int64_t sat(__int128 v) {
  if (v > kValMax) return kValMax;
  if (v < kValMin) return kValMin;
  return static_cast<std::int64_t>(v);
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return sat(static_cast<__int128>(a) + b);
}
std::int64_t sat_sub(std::int64_t a, std::int64_t b) {
  return sat(static_cast<__int128>(a) - b);
}

/// Closed interval with saturating endpoints.
struct Interval {
  std::int64_t lo = kValMin;
  std::int64_t hi = kValMax;

  static Interval full() { return {kValMin, kValMax}; }
  static Interval point(std::int64_t v) { return {v, v}; }

  [[nodiscard]] bool singleton() const { return lo == hi; }
  [[nodiscard]] bool is_full() const { return lo == kValMin && hi == kValMax; }

  [[nodiscard]] Interval hull(const Interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }
  [[nodiscard]] Interval add(const Interval& o) const {
    return {sat_add(lo, o.lo), sat_add(hi, o.hi)};
  }
  [[nodiscard]] Interval sub(const Interval& o) const {
    return {sat_sub(lo, o.hi), sat_sub(hi, o.lo)};
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

constexpr std::int64_t kU32Max = 0xFFFFFFFFll;

// --- Main abstract domain ---------------------------------------------------

enum class Kind : std::uint8_t {
  kUninit,    // never written on some path
  kScalar,    // plain value, bounds in `range`
  kStackPtr,  // r10 + offset, offset bounds in `range`
  kCtxPtr,    // helper-returned pointer; accesses runtime-checked
};

struct AbsVal {
  Kind kind = Kind::kUninit;
  Interval range = Interval::full();

  static AbsVal uninit() { return {Kind::kUninit, Interval::full()}; }
  static AbsVal scalar(Interval r) { return {Kind::kScalar, r}; }
  static AbsVal stack(Interval r) { return {Kind::kStackPtr, r}; }
  static AbsVal ctx() { return {Kind::kCtxPtr, Interval::full()}; }

  [[nodiscard]] bool initialized() const { return kind != Kind::kUninit; }

  friend bool operator==(const AbsVal&, const AbsVal&) = default;
};

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == Kind::kUninit || b.kind == Kind::kUninit) return AbsVal::uninit();
  if (a.kind == b.kind) return {a.kind, a.range.hull(b.range)};
  // Mixed initialized kinds: sound as an unknown scalar — any dereference
  // through it is bounds-checked by the interpreter's memory model.
  return AbsVal::scalar(Interval::full());
}

using RegState = std::array<AbsVal, kNumRegisters>;

RegState entry_state() {
  RegState s;
  for (auto& v : s) v = AbsVal::uninit();
  // Vm::run preloads r1..r5 from the invocation arguments (the VMM passes
  // the insertion-point id in r1 and zeroes the rest).
  for (int r = 1; r <= 5; ++r) s[r] = AbsVal::scalar(Interval::full());
  s[kFramePointer] = AbsVal::stack(Interval::point(0));
  return s;
}

int mem_size(std::uint8_t opcode) {
  switch (opcode & 0x18) {
    case kSizeB: return 1;
    case kSizeH: return 2;
    case kSizeW: return 4;
    default: return 8;
  }
}

Interval load_range(int size) {
  switch (size) {
    case 1: return {0, 0xFF};
    case 2: return {0, 0xFFFF};
    case 4: return {0, kU32Max};
    default: return Interval::full();
  }
}

// --- Loop-analysis symbolic domain ------------------------------------------
//
// Values relative to the register file at loop-header entry:
//   kTop     unknown
//   kVal     a plain value within `delta` (may differ per iteration;
//            a singleton is a loop-invariant constant)
//   kAnchor  header-entry value of register `base` plus `delta`
//
// A register whose value at every back-edge is anchored on itself with a
// strictly positive (or strictly negative) delta is a monotone induction
// register.

struct SymVal {
  enum class K : std::uint8_t { kTop, kVal, kAnchor };
  K k = K::kTop;
  int base = -1;
  Interval delta = Interval::full();

  static SymVal top() { return {K::kTop, -1, Interval::full()}; }
  static SymVal val(Interval r) { return {K::kVal, -1, r}; }
  static SymVal anchor(int reg, Interval d) { return {K::kAnchor, reg, d}; }

  friend bool operator==(const SymVal&, const SymVal&) = default;
};

SymVal sym_join(const SymVal& a, const SymVal& b) {
  if (a.k == SymVal::K::kAnchor && b.k == SymVal::K::kAnchor && a.base == b.base) {
    return SymVal::anchor(a.base, a.delta.hull(b.delta));
  }
  if (a.k == SymVal::K::kVal && b.k == SymVal::K::kVal) {
    return SymVal::val(a.delta.hull(b.delta));
  }
  return SymVal::top();
}

using SymState = std::array<SymVal, kNumRegisters>;

// --- Normalized branch predicates for the induction check -------------------

enum class Cmp : std::uint8_t { kEq, kNe, kGt, kGe, kLt, kLe, kSgt, kSge, kSlt, kSle, kNone };

Cmp cmp_of(std::uint8_t op) {
  switch (op) {
    case kJmpJeq: return Cmp::kEq;
    case kJmpJne: return Cmp::kNe;
    case kJmpJgt: return Cmp::kGt;
    case kJmpJge: return Cmp::kGe;
    case kJmpJlt: return Cmp::kLt;
    case kJmpJle: return Cmp::kLe;
    case kJmpJsgt: return Cmp::kSgt;
    case kJmpJsge: return Cmp::kSge;
    case kJmpJslt: return Cmp::kSlt;
    case kJmpJsle: return Cmp::kSle;
    default: return Cmp::kNone;  // ja / call / exit / jset
  }
}

Cmp invert(Cmp c) {
  switch (c) {
    case Cmp::kEq: return Cmp::kNe;
    case Cmp::kNe: return Cmp::kEq;
    case Cmp::kGt: return Cmp::kLe;
    case Cmp::kLe: return Cmp::kGt;
    case Cmp::kGe: return Cmp::kLt;
    case Cmp::kLt: return Cmp::kGe;
    case Cmp::kSgt: return Cmp::kSle;
    case Cmp::kSle: return Cmp::kSgt;
    case Cmp::kSge: return Cmp::kSlt;
    case Cmp::kSlt: return Cmp::kSge;
    default: return Cmp::kNone;
  }
}

// --- The analysis proper ----------------------------------------------------

class Analysis {
 public:
  Analysis(const Program& program, const std::set<std::int32_t>& allowed_helpers,
           const Analyzer::Options& options)
      : program_(program), allowed_helpers_(allowed_helpers), options_(options) {}

  AnalysisResult run() {
    // Pass 0: the structural verifier.  Its single error gates everything
    // else — without it the CFG is not well-defined.
    if (auto err = Verifier::verify(program_, allowed_helpers_)) {
      emit(Severity::kError, err->insn_index, -1, err->reason);
      return finish();
    }
    facts_.stack_safe.assign(program_.insns().size(), 0);
    cfg_ = Cfg::build(program_);

    if (options_.warnings) {
      for (std::size_t b = 0; b < cfg_->blocks().size(); ++b) {
        if (!cfg_->reachable(b)) {
          emit(Severity::kWarning, cfg_->blocks()[b].first, -1,
               "unreachable code (basic block " + Cfg::label(b) + " is never executed)");
        }
      }
    }

    fixpoint();
    report_pass();
    for (const NaturalLoop& loop : cfg_->loops()) check_loop(loop);
    for (const CfgEdge& e : cfg_->irreducible_edges()) {
      emit(Severity::kError, cfg_->blocks()[e.from].last, -1,
           "irreducible control flow: jump back into " + Cfg::label(e.to) +
               " which does not dominate " + Cfg::label(e.from));
    }
    return finish();
  }

 private:
  // ---- diagnostics ----
  void emit(Severity sev, std::size_t insn, int reg, std::string reason) {
    if (sev == Severity::kWarning && !options_.warnings) return;
    diags_.push_back(Diagnostic{sev, insn, reg, std::move(reason)});
  }

  AnalysisResult finish() {
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.insn_index < b.insn_index;
                     });
    // A rejected program's facts must never reach the translator's
    // check-elision pass: any error voids them wholesale.
    const bool rejected = std::any_of(
        diags_.begin(), diags_.end(),
        [](const Diagnostic& d) { return d.severity == Severity::kError; });
    if (rejected) facts_.stack_safe.clear();
    return AnalysisResult{std::move(diags_), std::move(facts_)};
  }

  // ---- main abstract interpretation ----

  /// Reads a register for its value; reports (once per site, in the report
  /// pass) when it may be uninitialized and recovers to an unknown scalar.
  AbsVal read_reg(RegState& s, int reg, std::size_t insn, bool reporting) {
    if (!s[reg].initialized()) {
      if (reporting) {
        emit(Severity::kError, insn, reg,
             "read of uninitialized register r" + std::to_string(reg));
      }
      s[reg] = AbsVal::scalar(Interval::full());
    }
    return s[reg];
  }

  void check_stack_access(std::size_t insn, const AbsVal& base, std::int16_t off, int size,
                          bool reporting) {
    const std::int64_t lo = sat_add(base.range.lo, off);
    const std::int64_t hi = sat_add(base.range.hi, off);
    if (lo < -kStackSize || sat_add(hi, size) > 0) {
      if (reporting) {
        emit(Severity::kError, insn, -1,
             "stack access out of bounds (bytes [" + std::to_string(lo) + ", " +
                 std::to_string(sat_add(hi, size)) + ") relative to r10; the frame is [-" +
                 std::to_string(kStackSize) + ", 0))");
      }
      return;
    }
    // In-frame on every path reaching this site: record the proof so the
    // translator may elide the runtime bounds check. The report pass visits
    // each reachable block exactly once from its fixpoint in-state, so the
    // interval here is already the hull over all paths.
    if (reporting) facts_.stack_safe[insn] = 1;
    if (reporting && base.range.singleton() && size > 1 && (lo % size) != 0) {
      emit(Severity::kWarning, insn, -1,
           "misaligned stack access (offset " + std::to_string(lo) + " is not " +
               std::to_string(size) + "-byte aligned)");
    }
  }

  /// Dead-store bookkeeping, active only in the report pass: last unread
  /// store per exact stack slot within one basic block.
  struct PendingStore {
    std::int64_t off = 0;
    int size = 0;
    std::size_t insn = 0;
  };

  void stores_clear(std::vector<PendingStore>* pending) {
    if (pending != nullptr) pending->clear();
  }

  void stores_load(std::vector<PendingStore>* pending, std::int64_t off, int size) {
    if (pending == nullptr) return;
    std::erase_if(*pending, [&](const PendingStore& p) {
      return off < p.off + p.size && p.off < off + size;
    });
  }

  void stores_store(std::vector<PendingStore>* pending, std::int64_t off, int size,
                    std::size_t insn) {
    if (pending == nullptr) return;
    for (const PendingStore& p : *pending) {
      if (p.off == off && p.size == size) {
        emit(Severity::kWarning, p.insn, -1,
             "dead store to stack slot [r10" + std::to_string(off) +
                 "] (overwritten at insn " + std::to_string(insn) +
                 " with no intervening load)");
      }
    }
    std::erase_if(*pending, [&](const PendingStore& p) {
      return off < p.off + p.size && p.off < off + size;
    });
    pending->push_back({off, size, insn});
  }

  /// Transfer function for one instruction.  `pending` is non-null only in
  /// the report pass (which also makes read_reg/check_stack_access emit).
  void exec_insn(RegState& s, std::size_t i, std::vector<PendingStore>* pending) {
    const bool reporting = pending != nullptr;
    const auto& insns = program_.insns();
    const Insn& insn = insns[i];
    const std::uint8_t cls = insn.cls();

    switch (cls) {
      case kClsAlu:
      case kClsAlu64:
        exec_alu(s, i, insn, cls == kClsAlu64, reporting);
        break;
      case kClsLd: {  // lddw
        const std::uint64_t imm64 =
            static_cast<std::uint32_t>(insn.imm) |
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(insns[i + 1].imm)) << 32);
        s[insn.dst] = imm64 <= static_cast<std::uint64_t>(kValMax)
                          ? AbsVal::scalar(Interval::point(static_cast<std::int64_t>(imm64)))
                          : AbsVal::scalar(Interval::full());
        break;
      }
      case kClsLdx: {
        const AbsVal base = read_reg(s, insn.src, i, reporting);
        const int size = mem_size(insn.opcode);
        if (base.kind == Kind::kStackPtr) {
          check_stack_access(i, base, insn.offset, size, reporting);
          if (base.range.singleton()) {
            stores_load(pending, sat_add(base.range.lo, insn.offset), size);
          } else {
            stores_clear(pending);
          }
        } else {
          // A load through an unknown pointer may read any region the memory
          // model exposes — including the stack frame.
          stores_clear(pending);
        }
        s[insn.dst] = AbsVal::scalar(load_range(size));
        break;
      }
      case kClsSt:
      case kClsStx: {
        const AbsVal base = read_reg(s, insn.dst, i, reporting);
        if (cls == kClsStx) (void)read_reg(s, insn.src, i, reporting);
        const int size = mem_size(insn.opcode);
        if (base.kind == Kind::kStackPtr) {
          check_stack_access(i, base, insn.offset, size, reporting);
          if (base.range.singleton()) {
            stores_store(pending, sat_add(base.range.lo, insn.offset), size, i);
          } else {
            stores_clear(pending);
          }
        } else {
          stores_clear(pending);
        }
        break;
      }
      case kClsJmp: {
        const std::uint8_t op = insn.opcode & 0xf0;
        if (op == kJmpCall) {
          exec_call(s, i, insn, reporting);
          stores_clear(pending);  // helpers may read the stack through passed pointers
          break;
        }
        if (op == kJmpExit) {
          if (reporting && !s[0].initialized()) {
            emit(Severity::kError, i, 0, "r0 is not set before exit");
          }
          break;
        }
        if (op == kJmpJa) break;
        (void)read_reg(s, insn.dst, i, reporting);
        if (insn.opcode & kSrcX) (void)read_reg(s, insn.src, i, reporting);
        break;
      }
      case kClsJmp32: {
        (void)read_reg(s, insn.dst, i, reporting);
        if (insn.opcode & kSrcX) (void)read_reg(s, insn.src, i, reporting);
        break;
      }
      default:
        break;  // pass 0 rejected unknown classes already
    }
  }

  void exec_alu(RegState& s, std::size_t i, const Insn& insn, bool is64, bool reporting) {
    const std::uint8_t op = insn.opcode & 0xf0;

    if (op == kAluEnd) {
      (void)read_reg(s, insn.dst, i, reporting);
      Interval r = Interval::full();
      if (insn.imm == 16) r = {0, 0xFFFF};
      if (insn.imm == 32) r = {0, kU32Max};
      s[insn.dst] = AbsVal::scalar(r);
      return;
    }
    if (op == kAluNeg) {
      const AbsVal v = read_reg(s, insn.dst, i, reporting);
      Interval r = Interval::full();
      if (is64 && v.kind == Kind::kScalar && !v.range.is_full()) {
        r = Interval::point(0).sub(v.range);
      }
      if (!is64) r = {0, kU32Max};
      s[insn.dst] = AbsVal::scalar(r);
      return;
    }
    if (op == kAluMov) {
      if ((insn.opcode & kSrcX) == 0) {
        const std::int64_t v = is64 ? static_cast<std::int64_t>(insn.imm)
                                    : static_cast<std::int64_t>(
                                          static_cast<std::uint32_t>(insn.imm));
        s[insn.dst] = AbsVal::scalar(Interval::point(v));
        return;
      }
      const AbsVal v = read_reg(s, insn.src, i, reporting);
      if (is64) {
        s[insn.dst] = v;
      } else if (v.kind == Kind::kScalar && v.range.lo >= 0 && v.range.hi <= kU32Max) {
        s[insn.dst] = v;
      } else {
        s[insn.dst] = AbsVal::scalar({0, kU32Max});
      }
      return;
    }

    // Binary operations.
    const AbsVal dst = read_reg(s, insn.dst, i, reporting);
    AbsVal operand = AbsVal::scalar(Interval::point(insn.imm));
    if (insn.opcode & kSrcX) operand = read_reg(s, insn.src, i, reporting);

    if (!is64) {
      // 32-bit ALU zero-extends; we only track that the result fits in u32.
      s[insn.dst] = AbsVal::scalar({0, kU32Max});
      return;
    }

    const bool dst_ptr = dst.kind == Kind::kStackPtr || dst.kind == Kind::kCtxPtr;
    const bool opd_ptr = operand.kind == Kind::kStackPtr || operand.kind == Kind::kCtxPtr;

    switch (op) {
      case kAluAdd:
        if (dst.kind == Kind::kStackPtr && operand.kind == Kind::kScalar) {
          s[insn.dst] = AbsVal::stack(dst.range.add(operand.range));
        } else if (dst.kind == Kind::kScalar && operand.kind == Kind::kStackPtr) {
          s[insn.dst] = AbsVal::stack(operand.range.add(dst.range));
        } else if (dst.kind == Kind::kCtxPtr || operand.kind == Kind::kCtxPtr) {
          s[insn.dst] = AbsVal::ctx();
        } else {
          s[insn.dst] = AbsVal::scalar(dst.range.add(operand.range));
        }
        break;
      case kAluSub:
        if (dst.kind == Kind::kStackPtr && operand.kind == Kind::kScalar) {
          s[insn.dst] = AbsVal::stack(dst.range.sub(operand.range));
        } else if (dst.kind == Kind::kCtxPtr && operand.kind == Kind::kScalar) {
          s[insn.dst] = AbsVal::ctx();
        } else if (!dst_ptr && !opd_ptr) {
          s[insn.dst] = AbsVal::scalar(dst.range.sub(operand.range));
        } else {
          s[insn.dst] = AbsVal::scalar(Interval::full());
        }
        break;
      case kAluAnd:
        if ((insn.opcode & kSrcX) == 0 && insn.imm >= 0) {
          s[insn.dst] = AbsVal::scalar({0, insn.imm});
        } else {
          s[insn.dst] = AbsVal::scalar(Interval::full());
        }
        break;
      case kAluLsh:
        if ((insn.opcode & kSrcX) == 0 && dst.kind == Kind::kScalar && dst.range.lo >= 0 &&
            dst.range.hi <= (kValMax >> insn.imm)) {
          s[insn.dst] = AbsVal::scalar({dst.range.lo << insn.imm, dst.range.hi << insn.imm});
        } else {
          s[insn.dst] = AbsVal::scalar(Interval::full());
        }
        break;
      case kAluRsh:
        if ((insn.opcode & kSrcX) == 0 && insn.imm > 0) {
          if (dst.kind == Kind::kScalar && dst.range.lo >= 0) {
            s[insn.dst] = AbsVal::scalar({dst.range.lo >> insn.imm, dst.range.hi >> insn.imm});
          } else {
            // A u64 shifted right by >=1 fits in a non-negative int64.
            s[insn.dst] = AbsVal::scalar(
                {0, static_cast<std::int64_t>(~0ull >> insn.imm)});
          }
        } else if ((insn.opcode & kSrcX) == 0 && insn.imm == 0) {
          s[insn.dst] = dst_ptr ? AbsVal::scalar(Interval::full()) : AbsVal::scalar(dst.range);
        } else {
          s[insn.dst] = AbsVal::scalar(Interval::full());
        }
        break;
      case kAluDiv:
        if ((insn.opcode & kSrcX) == 0 && insn.imm > 0 && dst.kind == Kind::kScalar &&
            dst.range.lo >= 0) {
          s[insn.dst] = AbsVal::scalar({dst.range.lo / insn.imm, dst.range.hi / insn.imm});
        } else {
          s[insn.dst] = AbsVal::scalar(Interval::full());
        }
        break;
      case kAluMul:
        if (dst.kind == Kind::kScalar && operand.kind == Kind::kScalar && dst.range.lo >= 0 &&
            operand.range.lo >= 0 && dst.range.hi <= (1ll << 31) &&
            operand.range.hi <= (1ll << 31)) {
          s[insn.dst] =
              AbsVal::scalar({dst.range.lo * operand.range.lo, dst.range.hi * operand.range.hi});
        } else {
          s[insn.dst] = AbsVal::scalar(Interval::full());
        }
        break;
      default:  // or, xor, mod, arsh: tracked as unknown scalars
        s[insn.dst] = AbsVal::scalar(Interval::full());
        break;
    }
  }

  void exec_call(RegState& s, std::size_t i, const Insn& insn, bool reporting) {
    int arity = 0;
    if (auto it = options_.helper_arity.find(insn.imm); it != options_.helper_arity.end()) {
      arity = it->second;
    }
    for (int r = 1; r <= arity; ++r) {
      if (reporting && !s[r].initialized()) {
        emit(Severity::kError, i, r,
             "helper " + std::to_string(insn.imm) + " called with uninitialized argument r" +
                 std::to_string(r));
      }
    }
    for (int r = 1; r <= 5; ++r) s[r] = AbsVal::uninit();  // caller-saved
    s[0] = AbsVal::ctx();  // defined: value or host-checked pointer
  }

  void exec_block(RegState& s, std::size_t b, std::vector<PendingStore>* pending) {
    const BasicBlock& bb = cfg_->blocks()[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      if (cfg_->is_lddw_tail(i)) continue;
      exec_insn(s, i, pending);
    }
  }

  void fixpoint() {
    const std::size_t nb = cfg_->blocks().size();
    in_state_.assign(nb, RegState{});
    has_in_.assign(nb, false);
    std::vector<std::size_t> visits(nb, 0);
    std::vector<bool> queued(nb, false);

    in_state_[0] = entry_state();
    has_in_[0] = true;
    std::deque<std::size_t> work{0};
    queued[0] = true;

    while (!work.empty()) {
      const std::size_t b = work.front();
      work.pop_front();
      queued[b] = false;
      ++visits[b];

      RegState out = in_state_[b];
      exec_block(out, b, nullptr);

      for (std::size_t succ : cfg_->blocks()[b].succs) {
        RegState next;
        if (!has_in_[succ]) {
          next = out;
        } else {
          next = in_state_[succ];
          for (int r = 0; r < kNumRegisters; ++r) next[r] = join(next[r], out[r]);
          // Widen once a block has been revisited a few times: any bound
          // still moving is snapped to the saturation point, guaranteeing
          // termination without bounding precision-relevant constants.
          if (visits[succ] > kWidenAfter) {
            for (int r = 0; r < kNumRegisters; ++r) {
              if (next[r].kind != in_state_[succ][r].kind) continue;
              if (next[r].range.lo < in_state_[succ][r].range.lo) next[r].range.lo = kValMin;
              if (next[r].range.hi > in_state_[succ][r].range.hi) next[r].range.hi = kValMax;
            }
          }
        }
        if (!has_in_[succ] || next != in_state_[succ]) {
          in_state_[succ] = next;
          has_in_[succ] = true;
          if (!queued[succ]) {
            work.push_back(succ);
            queued[succ] = true;
          }
        }
      }
    }
  }

  /// Re-executes every reachable block once, from its fixpoint in-state, with
  /// diagnostics enabled.  Each potential fault site reports exactly once.
  void report_pass() {
    for (std::size_t b = 0; b < cfg_->blocks().size(); ++b) {
      if (!cfg_->reachable(b) || !has_in_[b]) continue;
      RegState s = in_state_[b];
      std::vector<PendingStore> pending;
      exec_block(s, b, &pending);
    }
  }

  // ---- loop trip-count induction check ----

  void sym_exec_insn(SymState& s, std::size_t i) {
    const auto& insns = program_.insns();
    const Insn& insn = insns[i];
    const std::uint8_t cls = insn.cls();
    using K = SymVal::K;

    auto set_val_full = [&](int reg) { s[reg] = SymVal::val(Interval::full()); };

    switch (cls) {
      case kClsAlu:
      case kClsAlu64: {
        const std::uint8_t op = insn.opcode & 0xf0;
        const bool is64 = cls == kClsAlu64;
        if (op == kAluMov) {
          if ((insn.opcode & kSrcX) == 0) {
            const std::int64_t v = is64 ? static_cast<std::int64_t>(insn.imm)
                                        : static_cast<std::int64_t>(
                                              static_cast<std::uint32_t>(insn.imm));
            s[insn.dst] = SymVal::val(Interval::point(v));
          } else if (is64) {
            s[insn.dst] = s[insn.src];
          } else if (s[insn.src].k == K::kVal && s[insn.src].delta.lo >= 0 &&
                     s[insn.src].delta.hi <= kU32Max) {
            s[insn.dst] = s[insn.src];
          } else {
            s[insn.dst] = SymVal::val({0, kU32Max});
          }
          return;
        }
        if ((op == kAluAdd || op == kAluSub) && is64) {
          SymVal operand = SymVal::val(Interval::point(insn.imm));
          if (insn.opcode & kSrcX) operand = s[insn.src];
          const SymVal dst = s[insn.dst];
          if (operand.k == K::kVal) {
            if (dst.k == K::kAnchor) {
              s[insn.dst] = SymVal::anchor(
                  dst.base,
                  op == kAluAdd ? dst.delta.add(operand.delta) : dst.delta.sub(operand.delta));
              return;
            }
            if (dst.k == K::kVal) {
              s[insn.dst] = SymVal::val(op == kAluAdd ? dst.delta.add(operand.delta)
                                                      : dst.delta.sub(operand.delta));
              return;
            }
          } else if (operand.k == K::kAnchor && dst.k == K::kVal && op == kAluAdd) {
            s[insn.dst] = SymVal::anchor(operand.base, operand.delta.add(dst.delta));
            return;
          }
          s[insn.dst] = SymVal::top();
          return;
        }
        if (op == kAluAnd && is64 && (insn.opcode & kSrcX) == 0 && insn.imm >= 0) {
          s[insn.dst] = SymVal::val({0, insn.imm});
          return;
        }
        if (op == kAluLsh && is64 && (insn.opcode & kSrcX) == 0 &&
            s[insn.dst].k == K::kVal && s[insn.dst].delta.lo >= 0 &&
            s[insn.dst].delta.hi <= (kValMax >> insn.imm)) {
          s[insn.dst] = SymVal::val(
              {s[insn.dst].delta.lo << insn.imm, s[insn.dst].delta.hi << insn.imm});
          return;
        }
        // Everything else produces an unknown per-iteration value.
        set_val_full(insn.dst);
        return;
      }
      case kClsLd: {
        const std::uint64_t imm64 =
              static_cast<std::uint32_t>(insn.imm) |
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(insns[i + 1].imm)) << 32);
        s[insn.dst] = imm64 <= static_cast<std::uint64_t>(kValMax)
                          ? SymVal::val(Interval::point(static_cast<std::int64_t>(imm64)))
                          : SymVal::val(Interval::full());
        return;
      }
      case kClsLdx: {
        const int size = mem_size(insn.opcode);
        s[insn.dst] = size == 8 ? SymVal::val(Interval::full()) : SymVal::val(load_range(size));
        return;
      }
      case kClsSt:
      case kClsStx:
        return;
      case kClsJmp: {
        const std::uint8_t op = insn.opcode & 0xf0;
        if (op == kJmpCall) {
          for (int r = 1; r <= 5; ++r) s[r] = SymVal::top();
          s[0] = SymVal::val(Interval::full());
        }
        return;
      }
      default:
        return;
    }
  }

  SymState sym_exec_block(const SymState& in, std::size_t b, bool stop_before_terminator) {
    SymState s = in;
    const BasicBlock& bb = cfg_->blocks()[b];
    const std::size_t end = stop_before_terminator ? bb.last : bb.last + 1;
    for (std::size_t i = bb.first; i < end; ++i) {
      if (cfg_->is_lddw_tail(i)) continue;
      sym_exec_insn(s, i);
    }
    return s;
  }

  void check_loop(const NaturalLoop& loop) {
    const auto& insns = program_.insns();
    const auto& blocks = cfg_->blocks();
    const std::size_t report_at = blocks[loop.back_edge_sources.front()].last;

    // Which registers are written anywhere in the loop (for invariance).
    std::array<bool, kNumRegisters> written{};
    for (std::size_t b : loop.blocks) {
      for (std::size_t i = blocks[b].first; i <= blocks[b].last; ++i) {
        if (cfg_->is_lddw_tail(i)) continue;
        const Insn& insn = insns[i];
        const std::uint8_t cls = insn.cls();
        if (cls == kClsAlu || cls == kClsAlu64 || cls == kClsLdx || cls == kClsLd) {
          written[insn.dst] = true;
        } else if (cls == kClsJmp && (insn.opcode & 0xf0) == kJmpCall) {
          for (int r = 0; r <= 5; ++r) written[r] = true;
        }
      }
    }

    // Exit edges: loop block -> non-loop block.  A loop no path leaves is
    // unconditionally divergent.
    struct ExitEdge {
      std::size_t block;
      bool exit_on_true;  // the branch-taken successor leaves the loop
    };
    std::vector<ExitEdge> exits;
    bool has_any_exit = false;
    for (std::size_t b : loop.blocks) {
      const Insn& term = insns[blocks[b].last];
      const bool cond = term.cls() == kClsJmp && cmp_of(term.opcode & 0xf0) != Cmp::kNone;
      for (std::size_t succ : blocks[b].succs) {
        if (loop.contains(succ)) continue;
        has_any_exit = true;
        if (!cond) continue;
        const auto target = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(blocks[b].last) + 1 + term.offset);
        exits.push_back({b, cfg_->block_of(target) == succ});
      }
    }
    if (!has_any_exit) {
      emit(Severity::kError, report_at, -1,
           "unbounded loop: no path leaves the loop headed by " + Cfg::label(loop.header));
      return;
    }

    // Symbolic fixpoint over the loop body, back-edges cut at the header.
    std::map<std::size_t, SymState> in_sym;
    std::map<std::size_t, std::size_t> visits;
    SymState seed;
    for (int r = 0; r < kNumRegisters; ++r) {
      const bool init =
          has_in_[loop.header] && in_state_[loop.header][r].initialized();
      seed[r] = init ? SymVal::anchor(r, Interval::point(0)) : SymVal::top();
    }
    in_sym[loop.header] = seed;
    std::deque<std::size_t> work{loop.header};
    while (!work.empty()) {
      const std::size_t b = work.front();
      work.pop_front();
      if (++visits[b] > kLoopFixpointCap) continue;
      const SymState out = sym_exec_block(in_sym[b], b, /*stop_before_terminator=*/false);
      for (std::size_t succ : cfg_->blocks()[b].succs) {
        if (!loop.contains(succ) || succ == loop.header) continue;
        auto it = in_sym.find(succ);
        if (it == in_sym.end()) {
          in_sym[succ] = out;
          work.push_back(succ);
          continue;
        }
        SymState next = it->second;
        bool changed = false;
        for (int r = 0; r < kNumRegisters; ++r) {
          SymVal j = sym_join(next[r], out[r]);
          if (visits[succ] > kWidenAfter && j.k != SymVal::K::kTop) {
            if (j.delta.lo < next[r].delta.lo) j.delta.lo = kValMin;
            if (j.delta.hi > next[r].delta.hi) j.delta.hi = kValMax;
          }
          if (!(j == next[r])) {
            next[r] = j;
            changed = true;
          }
        }
        if (changed) {
          it->second = next;
          work.push_back(succ);
        }
      }
    }

    // Induction candidates: anchored on themselves with strict progress at
    // every back-edge.
    std::array<Interval, kNumRegisters> step;
    std::array<bool, kNumRegisters> increasing{};
    std::array<bool, kNumRegisters> decreasing{};
    for (int r = 0; r < kNumRegisters; ++r) {
      increasing[r] = decreasing[r] = true;
      step[r] = {kValMax, kValMin};  // inverted-empty: hull() adopts the first delta
    }
    for (std::size_t u : loop.back_edge_sources) {
      auto it = in_sym.find(u);
      if (it == in_sym.end()) {  // back-edge source unreached in the sym walk
        increasing.fill(false);
        decreasing.fill(false);
        break;
      }
      const SymState out = sym_exec_block(it->second, u, /*stop_before_terminator=*/false);
      for (int r = 0; r < kNumRegisters; ++r) {
        const SymVal& v = out[r];
        const bool anchored = v.k == SymVal::K::kAnchor && v.base == r;
        if (!anchored || v.delta.lo < 1) increasing[r] = false;
        if (!anchored || v.delta.hi > -1) decreasing[r] = false;
        step[r] = anchored ? step[r].hull(v.delta) : Interval::full();
      }
    }

    auto invariant = [&](const SymVal& v) {
      if (v.k == SymVal::K::kVal) return v.delta.singleton();
      if (v.k == SymVal::K::kAnchor) return !written[v.base] && v.delta.singleton();
      return false;
    };

    // An exit test bounds the loop when it dominates every back-edge, one
    // operand tracks a monotone counter and the other is loop-invariant, and
    // the comparison direction matches the counter's direction.
    auto compatible = [&](const ExitEdge& e) {
      for (std::size_t u : loop.back_edge_sources) {
        if (!cfg_->dominates(e.block, u)) return false;
      }
      const Insn& term = insns[blocks[e.block].last];
      if (term.cls() != kClsJmp) return false;  // 32-bit compares not accepted
      Cmp cmp = cmp_of(term.opcode & 0xf0);
      if (cmp == Cmp::kNone) return false;
      if (!e.exit_on_true) cmp = invert(cmp);
      auto it = in_sym.find(e.block);
      if (it == in_sym.end()) return false;
      const SymState at = sym_exec_block(it->second, e.block, /*stop_before_terminator=*/true);
      const SymVal dst = at[term.dst];
      const SymVal src = (term.opcode & kSrcX) ? at[term.src]
                                               : SymVal::val(Interval::point(term.imm));

      auto matches = [&](const SymVal& counter_side, const SymVal& bound_side,
                         bool counter_is_dst) {
        if (counter_side.k != SymVal::K::kAnchor) return false;
        const int r = counter_side.base;
        if (r < 0 || r >= kNumRegisters) return false;
        if (!increasing[r] && !decreasing[r]) return false;
        if (!invariant(bound_side)) return false;
        const bool step_one = step[r].singleton() &&
                              (step[r].lo == 1 || step[r].lo == -1);
        if (cmp == Cmp::kNe) return true;  // strict progress leaves equality in <=2 steps
        if (cmp == Cmp::kEq) return step_one;  // unit step sweeps every value (mod 2^64)
        const bool counter_greater_exits =
            cmp == Cmp::kGt || cmp == Cmp::kGe || cmp == Cmp::kSgt || cmp == Cmp::kSge;
        const bool counter_less_exits =
            cmp == Cmp::kLt || cmp == Cmp::kLe || cmp == Cmp::kSlt || cmp == Cmp::kSle;
        // With the counter on the src side, "dst OP src" reads backwards.
        const bool exits_when_counter_high = counter_is_dst ? counter_greater_exits
                                                            : counter_less_exits;
        const bool exits_when_counter_low = counter_is_dst ? counter_less_exits
                                                           : counter_greater_exits;
        return (increasing[r] && exits_when_counter_high) ||
               (decreasing[r] && exits_when_counter_low);
      };
      return matches(dst, src, /*counter_is_dst=*/true) ||
             matches(src, dst, /*counter_is_dst=*/false);
    };

    for (const ExitEdge& e : exits) {
      if (compatible(e)) return;
    }
    emit(Severity::kError, report_at, -1,
         "cannot bound loop trip count (header " + Cfg::label(loop.header) +
             "): no monotone induction register with a dominating, loop-invariant exit test");
  }

  static constexpr std::size_t kWidenAfter = 4;
  static constexpr std::size_t kLoopFixpointCap = 64;

  const Program& program_;
  const std::set<std::int32_t>& allowed_helpers_;
  const Analyzer::Options& options_;
  std::optional<Cfg> cfg_;
  std::vector<RegState> in_state_;
  std::vector<bool> has_in_;
  std::vector<Diagnostic> diags_;
  SafetyFacts facts_;
};

}  // namespace

std::string Diagnostic::to_string() const {
  std::string out = ebpf::to_string(severity);
  out += " at insn ";
  out += std::to_string(insn_index);
  if (reg >= 0) {
    out += " (r";
    out += std::to_string(reg);
    out += ")";
  }
  out += ": ";
  out += reason;
  return out;
}

bool AnalysisResult::ok() const noexcept { return error_count() == 0; }

std::size_t AnalysisResult::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics) n += d.severity == Severity::kError;
  return n;
}

std::size_t AnalysisResult::warning_count() const noexcept {
  return diagnostics.size() - error_count();
}

const Diagnostic* AnalysisResult::first_error() const noexcept {
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

AnalysisResult Analyzer::analyze(const Program& program,
                                 const std::set<std::int32_t>& allowed_helpers,
                                 const Options& options) {
  Analysis analysis(program, allowed_helpers, options);
  return analysis.run();
}

AnalysisResult Analyzer::analyze(const Program& program,
                                 const std::set<std::int32_t>& allowed_helpers) {
  return analyze(program, allowed_helpers, Options());
}

}  // namespace xb::ebpf
