// Textual disassembly of eBPF programs, for diagnostics and tests.
#pragma once

#include <string>

#include "ebpf/program.hpp"

namespace xb::ebpf {

/// One instruction per line, in a ubpf-like mnemonic syntax, e.g.
///   0: mov64 r0, 0
///   1: jeq r1, 0x2, +3
///   2: call 7
///   3: exit
std::string disassemble(const Program& program);

/// Single-instruction form (the `next` slot of lddw renders as "lddw-hi").
std::string disassemble_insn(const Insn& insn, bool lddw_tail);

class Cfg;

/// CFG-annotated listing: a basic-block label line ("L2:") opens each block
/// and branch lines carry their target blocks ("; -> L4" for `ja`,
/// "; -> L4 else L3" for conditional jumps).
std::string disassemble_with_cfg(const Program& program, const Cfg& cfg);

/// The annotation suffix for the instruction at `index`; empty for
/// non-branch instructions.
std::string jump_annotation(const Program& program, const Cfg& cfg, std::size_t index);

}  // namespace xb::ebpf
