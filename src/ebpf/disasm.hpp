// Textual disassembly of eBPF programs, for diagnostics and tests.
#pragma once

#include <string>

#include "ebpf/program.hpp"

namespace xb::ebpf {

/// One instruction per line, in a ubpf-like mnemonic syntax, e.g.
///   0: mov64 r0, 0
///   1: jeq r1, 0x2, +3
///   2: call 7
///   3: exit
std::string disassemble(const Program& program);

/// Single-instruction form (the `next` slot of lddw renders as "lddw-hi").
std::string disassemble_insn(const Insn& insn, bool lddw_tail);

}  // namespace xb::ebpf
