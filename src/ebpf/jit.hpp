// Tier-2 x86-64 JIT backend for verified extensions.
//
// Jit::compile lowers a pre-decoded IrProgram (the tier-1 image) to native
// x86-64 once per manifest entry. Execution semantics are bit-identical to
// tiers 0/1 — same RunResult, same Fault (kind, pc, static detail literal),
// same helper-call sequences, same instruction-budget accounting — enforced
// by the three-tier differential gate in tests/ebpf_differential_test.cpp.
//
// Code shape (docs/execution_engine.md has the full tier-2 section):
//   * eBPF registers live in host registers (the classic ubpf mapping:
//     r0→rax, r1-r5→rdi/rsi/rdx/rcx/r8, r6-r9→rbx/r13/r14/r15, r10→rbp);
//     r9-r11 are codegen scratch and r12 pins the per-run JitState,
//   * the instruction budget is charged per basic block: one `sub` against
//     the remaining counter at each block entry, with statically computed
//     add-backs on early exits (exit / next() / faults), so the common path
//     pays one memory op per block instead of one per instruction,
//   * when a block's charge would overdraw the budget the code deopts: it
//     spills the eBPF registers and resumes in the tier-1 interpreter,
//     which performs the per-instruction accounting for the short tail —
//     budget-exhaustion pc and retired counts stay exact by construction,
//   * helper calls are direct trampolines into the registered HelperFn
//     table (one C shim; the std::function target cannot be inlined),
//   * memory bounds checks are either fully elided where the analyzer's
//     ProofTable proved the access safe (the IR's *Stk forms — elision
//     carries over 1:1 from tier 1) or inlined as a two-compare probe
//     against a per-run region cache, falling back to the MemoryModel on a
//     cache miss.
//
// Portability: on non-x86-64 targets, with XBGP_JIT=off in the
// environment, on mmap/mprotect failure, or on any unsupported IR op,
// compile() declines cleanly with a reason — the caller keeps running
// tier 1; a decline is never an error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "ebpf/codebuf.hpp"
#include "ebpf/ir.hpp"
#include "ebpf/vm.hpp"

namespace xb::ebpf {

/// Why a compilation declined (telemetry label values — keep in sync with
/// to_string below and the xbgp_vmm_jit_fallbacks_total series).
enum class JitFallback : std::uint8_t {
  kNone = 0,
  kDisabled,         // XBGP_JIT=off / compile-time opt-out
  kUnsupportedArch,  // target ISA is not x86-64 (or no W^X primitive)
  kAllocFailed,      // mmap / mprotect refused
  kUnsupportedOp,    // IR op the backend cannot lower
};
inline constexpr std::size_t kJitFallbackCount = 5;

[[nodiscard]] constexpr const char* to_string(JitFallback reason) noexcept {
  switch (reason) {
    case JitFallback::kNone: return "none";
    case JitFallback::kDisabled: return "disabled";
    case JitFallback::kUnsupportedArch: return "unsupported-arch";
    case JitFallback::kAllocFailed: return "alloc-failed";
    case JitFallback::kUnsupportedOp: return "unsupported-op";
  }
  return "none";
}

/// Per-run state block shared between generated code and the C++ runtime.
/// Generated code addresses fields via offsetof, so the layout is part of
/// the JIT ABI; append-only.
struct JitState {
  std::uint64_t remaining = 0;      // budget countdown (in/out)
  std::uint64_t stack_top = 0;      // r10 initial value
  std::uint64_t r0_out = 0;         // r0 at a clean exit
  std::uint64_t helper_id = 0;      // set by the call site, read by the shim
  std::uint64_t helper_ret = 0;     // kContinue value from the shim
  std::uint64_t fault_pc = 0;
  std::uint64_t fault_kind = 0;     // ebpf::FaultKind as integer
  const char* fault_detail = "";
  // Two-compare bounds-check cache: one read entry (any region) and one
  // write entry (writable regions only); [base, end) with end = base+size.
  // Reset to always-miss each run; filled by the probe shim from regions of
  // at least 8 bytes so `end - len` can never underflow. The empty sentinel
  // must hold end >= kMaxAccessLen: with end = 0, `end - len` would wrap to
  // ~0 and an access at address ~0 (which passes `addr >= base` when base is
  // ~0) would falsely hit. base = ~0, end = 8 rejects every address for every
  // access width 1..8.
  std::uint64_t rcache_base = ~std::uint64_t{0};
  std::uint64_t rcache_end = 8;
  std::uint64_t wcache_base = ~std::uint64_t{0};
  std::uint64_t wcache_end = 8;
  // Deopt snapshot: eBPF r0-r10 plus the IR index to resume from (tier 1
  // finishes the run with per-instruction budget accounting).
  std::uint64_t regs[11] = {};
  std::uint64_t deopt_ip = 0;
  // Host-side plumbing for the shims.
  const MemoryModel* memory = nullptr;
  const void* helpers = nullptr;     // HelperFn table base
  std::uint64_t helper_count = 0;
  std::uint64_t* helper_calls = nullptr;  // Vm::helper_calls_ counter
};

/// Exit codes returned in eax by generated code.
enum : std::uint32_t {
  kJitExitOk = 0,     // clean exit, r0 in JitState::r0_out
  kJitExitNext = 1,   // helper yielded next()
  kJitExitFault = 2,  // fault_{kind,pc,detail} populated
  kJitExitDeopt = 3,  // resume tier 1 from regs/deopt_ip/remaining
};

/// One compiled program: the executable image plus the IR it was compiled
/// from (needed for deopt resume; must outlive this object — the Vmm owns
/// both per manifest entry, shared read-only across all per-slot VMs).
class JitProgram {
 public:
  using Entry = std::uint32_t (*)(JitState*, std::uint64_t, std::uint64_t, std::uint64_t,
                                  std::uint64_t, std::uint64_t);

  [[nodiscard]] Entry entry() const noexcept {
    return reinterpret_cast<Entry>(reinterpret_cast<std::uintptr_t>(code_.data()));
  }
  [[nodiscard]] const IrProgram& ir() const noexcept { return *ir_; }
  [[nodiscard]] std::size_t code_bytes() const noexcept { return used_bytes_; }

  /// Elision counters carried over 1:1 from the IR image (the JIT emits no
  /// check for *Stk forms and a runtime probe for every checked form).
  [[nodiscard]] std::uint32_t elided_checks() const noexcept { return ir_->elided_checks; }
  [[nodiscard]] std::uint32_t elided_obj_checks() const noexcept {
    return ir_->elided_obj_checks;
  }
  [[nodiscard]] std::uint32_t checked_accesses() const noexcept {
    return ir_->checked_accesses;
  }

 private:
  friend class Jit;
  JitProgram(CodeBuf code, const IrProgram* ir, std::size_t used)
      : code_(std::move(code)), ir_(ir), used_bytes_(used) {}

  CodeBuf code_;
  const IrProgram* ir_;
  std::size_t used_bytes_;
};

class Jit {
 public:
  struct Options {
    /// Test hook: refuse the first lowerable op, exercising the
    /// unsupported-op decline path on real programs.
    bool reject_ops_for_test = false;
  };

  struct Result {
    std::unique_ptr<const JitProgram> program;  // null on decline
    JitFallback declined = JitFallback::kNone;

    [[nodiscard]] bool ok() const noexcept { return program != nullptr; }
  };

  /// Compiles `ir` to native code. `ir` must outlive the returned program.
  /// Declines (never throws, never fails the load) on non-x86-64 targets,
  /// when disabled via the XBGP_JIT environment knob, on executable-memory
  /// allocation failure, or on an op the backend cannot lower.
  [[nodiscard]] static Result compile(const IrProgram& ir, const Options& options);
  [[nodiscard]] static Result compile(const IrProgram& ir) { return compile(ir, Options{}); }

  /// True when this build can generate and run native code at all
  /// (x86-64 with a W^X allocator) — the env knob is not consulted.
  [[nodiscard]] static bool supported() noexcept;

  /// False when the XBGP_JIT environment variable is "off"/"0"/"false"
  /// (re-read on every call so tests can toggle it).
  [[nodiscard]] static bool enabled_by_env() noexcept;

  /// The tier the Vmm should default to on this host.
  [[nodiscard]] static ExecMode preferred_exec_mode() noexcept;
};

}  // namespace xb::ebpf
