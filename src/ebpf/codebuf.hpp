// W^X executable-memory allocator for the tier-2 JIT backend.
//
// Lifecycle: allocate() maps a writable, non-executable page span; the code
// generator fills it; finalize() flips the protection to read+execute. The
// mapping is never writable and executable at the same time (W^X), so a
// compromised extension cannot patch its own native image. Any failure —
// unsupported platform, mmap or mprotect refusal — leaves the buffer
// invalid, and the caller declines JIT compilation cleanly (the program
// runs tier 1 instead; never an error).
#pragma once

#include <cstddef>
#include <cstdint>

namespace xb::ebpf {

class CodeBuf {
 public:
  CodeBuf() = default;
  ~CodeBuf();

  CodeBuf(CodeBuf&& other) noexcept;
  CodeBuf& operator=(CodeBuf&& other) noexcept;
  CodeBuf(const CodeBuf&) = delete;
  CodeBuf& operator=(const CodeBuf&) = delete;

  /// Maps `size` bytes read+write (not executable). Returns an invalid
  /// buffer on failure or when the platform has no W^X primitive.
  [[nodiscard]] static CodeBuf allocate(std::size_t size);

  /// Flips the mapping to read+execute (dropping write). Returns false on
  /// failure; the buffer stays non-executable and must not be entered.
  [[nodiscard]] bool finalize() noexcept;

  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }
  [[nodiscard]] bool executable() const noexcept { return executable_; }
  [[nodiscard]] std::uint8_t* data() noexcept { return data_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Test hook: force every subsequent allocate() to fail, exercising the
  /// compile-decline → tier-1 fallback path without exhausting real memory.
  static void set_fail_allocations_for_test(bool fail) noexcept;

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;      // rounded up to the page size
  bool executable_ = false;
};

}  // namespace xb::ebpf
