// Dijkstra shortest-path-first over the IGP graph.
#pragma once

#include <vector>

#include "igp/graph.hpp"

namespace xb::igp {

struct SpfResult {
  /// dist[node] = metric of the shortest path from the source, or kInfMetric.
  std::vector<std::uint32_t> dist;
  /// first_hop[node] = the neighbour of the source on one shortest path
  /// (ties broken by lowest node id), or the node itself for the source.
  std::vector<NodeId> first_hop;
};

/// Runs SPF from `source`. Links with metric kInfMetric are treated as down.
[[nodiscard]] SpfResult shortest_paths(const Graph& graph, NodeId source);

}  // namespace xb::igp
