// Per-router IGP view: the metric to every other router's loopback.
//
// BGP consults this table twice: the decision process prefers the lowest
// IGP metric to the BGP nexthop (RFC 4271 §9.1.2.2.d), and the Listing-1
// use case filters exports whose nexthop metric exceeds a threshold.
#pragma once

#include <optional>
#include <unordered_map>

#include "igp/spf.hpp"

namespace xb::igp {

class IgpTable {
 public:
  IgpTable() = default;

  /// Builds the table for the router `self` from a fresh SPF run.
  IgpTable(const Graph& graph, NodeId self) { rebuild(graph, self); }

  void rebuild(const Graph& graph, NodeId self);

  /// Metric to the router owning `loopback`; kInfMetric if unreachable,
  /// std::nullopt if the address is not an IGP destination at all.
  [[nodiscard]] std::optional<std::uint32_t> metric_to(util::Ipv4Addr loopback) const;

  [[nodiscard]] std::size_t size() const noexcept { return metric_.size(); }

 private:
  std::unordered_map<util::Ipv4Addr, std::uint32_t> metric_;
};

}  // namespace xb::igp
