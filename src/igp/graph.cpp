#include "igp/graph.hpp"

#include <stdexcept>

namespace xb::igp {

NodeId Graph::add_node(util::Ipv4Addr loopback, std::string name) {
  if (by_loopback_.contains(loopback)) {
    throw std::invalid_argument("duplicate loopback " + loopback.str());
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{loopback, std::move(name), {}});
  by_loopback_.emplace(loopback, id);
  return id;
}

void Graph::add_edge(NodeId from, NodeId to, std::uint32_t metric) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("edge endpoint does not exist");
  }
  nodes_[from].edges.push_back(Edge{to, metric});
}

void Graph::add_link(NodeId a, NodeId b, std::uint32_t metric) {
  add_edge(a, b, metric);
  add_edge(b, a, metric);
}

void Graph::set_link_metric(NodeId a, NodeId b, std::uint32_t metric) {
  bool found = false;
  for (auto& e : nodes_.at(a).edges) {
    if (e.to == b) {
      e.metric = metric;
      found = true;
    }
  }
  for (auto& e : nodes_.at(b).edges) {
    if (e.to == a) {
      e.metric = metric;
      found = true;
    }
  }
  if (!found) throw std::invalid_argument("no such link");
}

bool Graph::lookup(util::Ipv4Addr loopback, NodeId& out) const {
  auto it = by_loopback_.find(loopback);
  if (it == by_loopback_.end()) return false;
  out = it->second;
  return true;
}

}  // namespace xb::igp
