// Weighted undirected graph of routers and links — the IGP topology.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/ip.hpp"

namespace xb::igp {

using NodeId = std::uint32_t;
inline constexpr std::uint32_t kInfMetric = 0xFFFFFFFFu;

class Graph {
 public:
  /// Adds a router identified by its loopback address. Returns its node id.
  NodeId add_node(util::Ipv4Addr loopback, std::string name = {});

  /// Adds a bidirectional link with the given IGP metric (both directions).
  void add_link(NodeId a, NodeId b, std::uint32_t metric);
  /// Adds a unidirectional link (for asymmetric-metric scenarios).
  void add_edge(NodeId from, NodeId to, std::uint32_t metric);

  /// Changes the metric of an existing a->b edge (and b->a for set_link).
  /// Used to simulate failures (set to kInfMetric) and repairs.
  void set_link_metric(NodeId a, NodeId b, std::uint32_t metric);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] util::Ipv4Addr loopback(NodeId id) const { return nodes_.at(id).loopback; }
  [[nodiscard]] const std::string& name(NodeId id) const { return nodes_.at(id).name; }
  [[nodiscard]] bool lookup(util::Ipv4Addr loopback, NodeId& out) const;

  struct Edge {
    NodeId to;
    std::uint32_t metric;
  };
  [[nodiscard]] const std::vector<Edge>& edges(NodeId id) const { return nodes_.at(id).edges; }

 private:
  struct Node {
    util::Ipv4Addr loopback;
    std::string name;
    std::vector<Edge> edges;
  };
  std::vector<Node> nodes_;
  std::unordered_map<util::Ipv4Addr, NodeId> by_loopback_;
};

}  // namespace xb::igp
