#include "igp/igp_table.hpp"

namespace xb::igp {

void IgpTable::rebuild(const Graph& graph, NodeId self) {
  metric_.clear();
  const SpfResult spf = shortest_paths(graph, self);
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    metric_[graph.loopback(id)] = spf.dist[id];
  }
}

std::optional<std::uint32_t> IgpTable::metric_to(util::Ipv4Addr loopback) const {
  auto it = metric_.find(loopback);
  if (it == metric_.end()) return std::nullopt;
  return it->second;
}

}  // namespace xb::igp
