#include "igp/spf.hpp"

#include <queue>

namespace xb::igp {

SpfResult shortest_paths(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  SpfResult out;
  out.dist.assign(n, kInfMetric);
  out.first_hop.assign(n, source);
  if (source >= n) return out;
  out.dist[source] = 0;

  struct Entry {
    std::uint32_t dist;
    NodeId node;
    NodeId first_hop;
  };
  struct Worse {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.dist != b.dist) return a.dist > b.dist;
      return a.first_hop > b.first_hop;  // deterministic tie-break
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Worse> heap;
  heap.push(Entry{0, source, source});

  std::vector<bool> done(n, false);
  while (!heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (done[top.node]) continue;
    done[top.node] = true;
    out.dist[top.node] = top.dist;
    out.first_hop[top.node] = top.first_hop;
    for (const auto& edge : graph.edges(top.node)) {
      if (edge.metric == kInfMetric || done[edge.to]) continue;
      const std::uint64_t alt = static_cast<std::uint64_t>(top.dist) + edge.metric;
      if (alt >= kInfMetric) continue;
      const auto alt32 = static_cast<std::uint32_t>(alt);
      if (alt32 < out.dist[edge.to]) {
        out.dist[edge.to] = alt32;
        const NodeId hop = top.node == source ? edge.to : top.first_hop;
        heap.push(Entry{alt32, edge.to, hop});
      }
    }
  }
  return out;
}

}  // namespace xb::igp
