// The RTR-client integration layer around a ROA store.
//
// FRRouting does not query its ROA structure directly: validation goes
// through the RTR client library (rtrlib, [38] in the paper), whose prefix
// table is shared with the RTR socket thread that applies RPKI updates.
// Every validation therefore pays (a) a reader lock on the table and (b) a
// conversion of the router's prefix representation into the library's
// address format. LockedRoaTable models that integration layer; the Fig. 4
// origin-validation benchmark wraps Fir's native trie in it, while the
// extension path (its own in-VM hash map) pays neither cost — part of why
// the paper's extension outperformed FRRouting's native code.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "rpki/roa.hpp"

namespace xb::rpki {

class LockedRoaTable final : public RoaTable {
 public:
  explicit LockedRoaTable(RoaTable& inner) : inner_(inner) {}

  void add(const Roa& roa) override {
    std::unique_lock lock(mutex_);
    inner_.add(roa);
  }

  bool remove(const Roa& roa) override {
    std::unique_lock lock(mutex_);
    return inner_.remove(roa);
  }

  [[nodiscard]] Validity validate(const util::Prefix& prefix, bgp::Asn origin) const override {
    std::shared_lock lock(mutex_);
    // Model the host-format -> library-format prefix conversion (rtrlib's
    // lrtr_ip_addr is byte-array based; FRR converts per call).
    const LibPrefix converted = to_lib_format(prefix);
    const util::Prefix back(util::Ipv4Addr::from_be(converted.addr_be), converted.len);
    return inner_.validate(back, origin);
  }

  [[nodiscard]] std::size_t size() const override {
    std::shared_lock lock(mutex_);
    return inner_.size();
  }

 private:
  struct LibPrefix {
    std::uint32_t addr_be;  // network byte order, as in lrtr_ip_addr
    std::uint8_t len;
  };

  static LibPrefix to_lib_format(const util::Prefix& prefix) {
    return LibPrefix{prefix.addr().to_be(), prefix.length()};
  }

  RoaTable& inner_;
  mutable std::shared_mutex mutex_;
};

}  // namespace xb::rpki
