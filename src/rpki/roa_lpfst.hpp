// Re-descending ROA store: a model of rtrlib's pfx_table validation loop.
//
// FRRouting's RPKI support validates through rtrlib [38], whose validation
// does not collect all covering entries in one pass: pfx_table_validate_r
// asks its prefix tree for the 1st, 2nd, 3rd, ... matching node, and every
// request RE-DESCENDS FROM THE ROOT. Validating a prefix whose path holds k
// covering nodes therefore costs k+1 full root-to-leaf descents — the
// repeated "browsing [of] a dedicated trie ... each time a prefix needs to
// be checked" the paper blames for FRRouting's native origin validation
// losing to the eBPF extension's single-probe hash table (§3.4).
//
// The underlying structure here is a correct binary trie (same semantics as
// RoaTrie — the equivalence is property-tested); what this class adds is
// rtrlib's lookup *cost shape*.
#pragma once

#include <memory>
#include <vector>

#include "rpki/roa.hpp"

namespace xb::rpki {

class LpfstRoaTable final : public RoaTable {
 public:
  void add(const Roa& roa) override;
  bool remove(const Roa& roa) override;
  [[nodiscard]] Validity validate(const util::Prefix& prefix, bgp::Asn origin) const override;
  [[nodiscard]] std::size_t size() const override { return count_; }

  /// Total nodes visited across all validate() calls, counting every node
  /// touched by every re-descent (bench telemetry).
  [[nodiscard]] std::uint64_t nodes_visited() const noexcept { return nodes_visited_; }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::vector<Roa> records;  // ROAs whose prefix ends exactly here
  };

  /// Re-descends from the root along the query's bit path and returns the
  /// (skip+1)-th node that carries covering records; nullptr when exhausted.
  [[nodiscard]] const Node* lookup_nth(const util::Prefix& query, unsigned skip) const;

  Node root_;
  std::size_t count_ = 0;
  mutable std::uint64_t nodes_visited_ = 0;
};

}  // namespace xb::rpki
