// Synthetic ROA set construction.
//
// The paper's §3.4 testbed "loads a file that considers 75% of the injected
// prefixes as valid". This loader reproduces that: given the workload's
// (prefix, origin) pairs it emits a ROA set under which a chosen fraction
// validates as Valid, the rest split between Invalid (covering ROA, wrong
// origin or too-long prefix) and NotFound (no covering ROA).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rpki/roa.hpp"

namespace xb::rpki {

struct AnnouncedRoute {
  util::Prefix prefix;
  bgp::Asn origin = 0;
};

struct RoaSetParams {
  double valid_fraction = 0.75;
  /// Among non-valid routes, the share that gets a mismatching ROA
  /// (Invalid) rather than no ROA at all (NotFound).
  double invalid_share_of_rest = 0.5;
  std::uint64_t seed = 42;
};

/// Deterministically builds the ROA list. Feed the result to any RoaTable.
std::vector<Roa> make_roa_set(std::span<const AnnouncedRoute> routes, const RoaSetParams& params);

/// Loads ROAs into a table.
void fill_table(RoaTable& table, std::span<const Roa> roas);

/// Serialises/parses the simple text format used by example programs:
/// one "prefix/len-maxlen AS" entry per line, e.g. "10.0.0.0/8-24 65001".
std::string to_text(std::span<const Roa> roas);
std::vector<Roa> from_text(const std::string& text);

}  // namespace xb::rpki
