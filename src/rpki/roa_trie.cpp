#include "rpki/roa_trie.hpp"

namespace xb::rpki {

void RoaTrie::add(const Roa& roa) {
  Node* node = &root_;
  const std::uint32_t addr = roa.prefix.addr().value();
  for (std::uint8_t depth = 0; depth < roa.prefix.length(); ++depth) {
    const int bit = (addr >> (31 - depth)) & 1;
    if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
    node = node->child[bit].get();
  }
  node->roas.push_back(roa);
  ++count_;
}

bool RoaTrie::remove(const Roa& roa) {
  Node* node = &root_;
  const std::uint32_t addr = roa.prefix.addr().value();
  for (std::uint8_t depth = 0; depth < roa.prefix.length(); ++depth) {
    const int bit = (addr >> (31 - depth)) & 1;
    if (!node->child[bit]) return false;
    node = node->child[bit].get();
  }
  for (auto it = node->roas.begin(); it != node->roas.end(); ++it) {
    if (*it == roa) {
      node->roas.erase(it);
      --count_;
      return true;
    }
  }
  return false;
}

Validity RoaTrie::validate(const util::Prefix& prefix, bgp::Asn origin) const {
  const Node* node = &root_;
  const std::uint32_t addr = prefix.addr().value();
  bool covered = false;
  bool valid = false;

  // Walk from the root down to the queried prefix length, considering the
  // ROAs at each covering node (a ROA at depth d covers the query iff the
  // walk reaches it, by construction of the path).
  for (std::uint8_t depth = 0;; ++depth) {
    ++nodes_visited_;
    for (const Roa& roa : node->roas) {
      covered = true;
      if (roa.origin == origin && prefix.length() <= roa.max_length) valid = true;
    }
    if (depth >= prefix.length()) break;
    const int bit = (addr >> (31 - depth)) & 1;
    const Node* next = node->child[bit].get();
    if (!next) break;
    node = next;
  }

  if (valid) return Validity::kValid;
  return covered ? Validity::kInvalid : Validity::kNotFound;
}

}  // namespace xb::rpki
