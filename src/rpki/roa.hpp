// Route Origin Authorizations and RFC 6811 validation outcomes.
#pragma once

#include <cstdint>

#include "bgp/types.hpp"
#include "util/ip.hpp"

namespace xb::rpki {

/// One ROA: `origin` may originate any prefix covered by `prefix` whose
/// length does not exceed `max_length` (RFC 6482).
struct Roa {
  util::Prefix prefix;
  std::uint8_t max_length = 0;
  bgp::Asn origin = 0;

  friend bool operator==(const Roa&, const Roa&) = default;
};

/// RFC 6811 §2 validation states.
enum class Validity : std::uint8_t {
  kNotFound = 0,  // no ROA covers the prefix
  kValid = 1,     // a covering ROA matches origin AS and max length
  kInvalid = 2,   // covering ROAs exist but none matches
};

[[nodiscard]] constexpr const char* to_string(Validity v) {
  switch (v) {
    case Validity::kNotFound: return "not-found";
    case Validity::kValid: return "valid";
    case Validity::kInvalid: return "invalid";
  }
  return "?";
}

/// Common interface so hosts can swap lookup structures (the paper's Fig. 4
/// origin-validation result hinges on FRR using a trie and BIRD a hash).
class RoaTable {
 public:
  virtual ~RoaTable() = default;
  virtual void add(const Roa& roa) = 0;
  /// Removes one matching ROA; false if absent. Needed by the RTR client
  /// (RFC 6810 withdrawals).
  virtual bool remove(const Roa& roa) = 0;
  [[nodiscard]] virtual Validity validate(const util::Prefix& prefix,
                                          bgp::Asn origin) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
};

}  // namespace xb::rpki
