#include "rpki/rtr_session.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace xb::rpki::rtr {

namespace {
constexpr util::Logger kLog{"rtr"};
}  // namespace

// ---------------------------------------------------------------------------
// CacheServer
// ---------------------------------------------------------------------------

void CacheServer::attach(net::Duplex::End end) {
  auto conn = std::make_unique<Connection>();
  conn->end = end;
  Connection* raw = conn.get();
  conn->end.on_readable([this, raw] { handle_readable(*raw); });
  connections_.push_back(std::move(conn));
}

void CacheServer::announce(const Roa& roa) { apply({Delta{true, roa}}); }
void CacheServer::withdraw(const Roa& roa) { apply({Delta{false, roa}}); }

void CacheServer::apply(const std::vector<Delta>& deltas) {
  for (const auto& delta : deltas) {
    if (delta.announce) {
      roas_.push_back(delta.roa);
    } else {
      auto it = std::find(roas_.begin(), roas_.end(), delta.roa);
      if (it != roas_.end()) roas_.erase(it);
    }
  }
  ++serial_;
  history_.push_back(deltas);
  notify_all();
}

void CacheServer::notify_all() {
  for (auto& conn : connections_) {
    send(*conn, SerialNotify{session_id_, serial_});
  }
}

void CacheServer::send(Connection& conn, const Pdu& pdu) { conn.end.write(encode(pdu)); }

void CacheServer::handle_readable(Connection& conn) {
  auto chunk = conn.end.read_all();
  conn.rx.insert(conn.rx.end(), chunk.begin(), chunk.end());
  while (true) {
    std::span<const std::uint8_t> pending(conn.rx.data() + conn.consumed,
                                          conn.rx.size() - conn.consumed);
    std::optional<Frame> frame;
    try {
      frame = try_decode(pending);
    } catch (const RtrError& e) {
      send(conn, ErrorReport{e.code(), {}, e.what()});
      return;
    }
    if (!frame) break;
    conn.consumed += frame->consumed;
    handle_pdu(conn, frame->pdu);
  }
  if (conn.consumed > 0 && conn.consumed * 2 >= conn.rx.size()) {
    conn.rx.erase(conn.rx.begin(), conn.rx.begin() + static_cast<std::ptrdiff_t>(conn.consumed));
    conn.consumed = 0;
  }
}

void CacheServer::handle_pdu(Connection& conn, const Pdu& pdu) {
  if (std::get_if<ResetQuery>(&pdu) != nullptr) {
    send_full_snapshot(conn);
    return;
  }
  if (const auto* query = std::get_if<SerialQuery>(&pdu)) {
    if (query->session_id != session_id_) {
      send(conn, CacheReset{});  // stale session: force full resync
      return;
    }
    send_deltas_since(conn, query->serial);
    return;
  }
  if (std::get_if<ErrorReport>(&pdu) != nullptr) {
    kLog.warn("client reported an error");
    return;
  }
  send(conn, ErrorReport{ErrorCode::kInvalidRequest, encode(pdu), "unexpected PDU"});
}

void CacheServer::send_full_snapshot(Connection& conn) {
  send(conn, CacheResponse{session_id_});
  for (const auto& roa : roas_) send(conn, Ipv4Prefix{true, roa});
  send(conn, EndOfData{session_id_, serial_});
}

void CacheServer::send_deltas_since(Connection& conn, std::uint32_t serial) {
  if (serial == serial_) {  // already current: empty delta response
    send(conn, CacheResponse{session_id_});
    send(conn, EndOfData{session_id_, serial_});
    return;
  }
  // History covers serials (history_base_, history_base_ + history_.size()].
  if (serial < history_base_ || serial > serial_) {
    send(conn, CacheReset{});
    return;
  }
  send(conn, CacheResponse{session_id_});
  for (std::size_t i = serial - history_base_; i < history_.size(); ++i) {
    for (const auto& delta : history_[i]) {
      send(conn, Ipv4Prefix{delta.announce, delta.roa});
    }
  }
  send(conn, EndOfData{session_id_, serial_});
}

// ---------------------------------------------------------------------------
// RtrClient
// ---------------------------------------------------------------------------

RtrClient::RtrClient(net::EventLoop& loop, net::Duplex::End end, RoaTable& table)
    : loop_(loop), end_(end), table_(table) {
  end_.on_readable([this] { handle_readable(); });
}

void RtrClient::start() {
  if (query_in_flight_) return;
  query_in_flight_ = true;
  send(ResetQuery{});
}

void RtrClient::handle_readable() {
  auto chunk = end_.read_all();
  rx_.insert(rx_.end(), chunk.begin(), chunk.end());
  while (true) {
    std::span<const std::uint8_t> pending(rx_.data() + consumed_, rx_.size() - consumed_);
    std::optional<Frame> frame;
    try {
      frame = try_decode(pending);
    } catch (const RtrError& e) {
      last_error_ = e.what();
      send(ErrorReport{e.code(), {}, e.what()});
      return;
    }
    if (!frame) break;
    consumed_ += frame->consumed;
    handle_pdu(frame->pdu);
  }
  if (consumed_ > 0 && consumed_ * 2 >= rx_.size()) {
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

void RtrClient::set_telemetry(obs::Registry* registry) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  pdus_rx_ = registry_->counter("xbgp_rtr_pdus_rx_total", "RTR PDUs received");
  roas_applied_ =
      registry_->counter("xbgp_rtr_roas_applied_total", "ROA announce/withdraw records applied");
  syncs_ = registry_->counter("xbgp_rtr_syncs_total", "Completed synchronisation runs (End of Data)");
  cache_resets_ = registry_->counter("xbgp_rtr_cache_resets_total", "Cache Reset PDUs received");
  errors_ = registry_->counter("xbgp_rtr_errors_total", "Error Report PDUs received");
}

void RtrClient::handle_pdu(const Pdu& pdu) {
  count(pdus_rx_);
  if (const auto* notify = std::get_if<SerialNotify>(&pdu)) {
    if (query_in_flight_) {
      pending_notify_ = notify->serial;  // handled after End of Data
      return;
    }
    if (!have_session_ || notify->session_id != session_id_) {
      query_in_flight_ = true;
      send(ResetQuery{});
    } else if (notify->serial != serial_) {
      query_in_flight_ = true;
      send(SerialQuery{session_id_, serial_});
    }
    return;
  }
  if (const auto* response = std::get_if<CacheResponse>(&pdu)) {
    session_id_ = response->session_id;
    have_session_ = true;
    return;
  }
  if (const auto* prefix = std::get_if<Ipv4Prefix>(&pdu)) {
    if (prefix->announce) {
      table_.add(prefix->roa);
    } else if (!table_.remove(prefix->roa)) {
      kLog.warn("withdrawal of unknown record");
    }
    ++updates_applied_;
    count(roas_applied_);
    return;
  }
  if (const auto* eod = std::get_if<EndOfData>(&pdu)) {
    serial_ = eod->serial;
    synchronized_ = true;
    query_in_flight_ = false;
    count(syncs_);
    if (on_synchronized) on_synchronized();
    // A notify that arrived mid-sync may point past the serial we now hold.
    if (pending_notify_ && *pending_notify_ != serial_) {
      pending_notify_.reset();
      query_in_flight_ = true;
      send(SerialQuery{session_id_, serial_});
    } else {
      pending_notify_.reset();
    }
    return;
  }
  if (std::get_if<CacheReset>(&pdu) != nullptr) {
    // Full resync required; the snapshot will rebuild the table. Remove what
    // we have (no generic clear on RoaTable: withdraw via a fresh query --
    // the cache sends announcements for the complete set, so duplicates
    // would accumulate; instead mark unsynchronised and request the
    // snapshot; duplicated adds are avoided by the caller wiring a fresh
    // table or tolerating multiset semantics).
    synchronized_ = false;
    query_in_flight_ = true;
    count(cache_resets_);
    send(ResetQuery{});
    return;
  }
  if (const auto* error = std::get_if<ErrorReport>(&pdu)) {
    last_error_ = error->text;
    count(errors_);
    kLog.warn("cache reported error: ", error->text);
    return;
  }
}

}  // namespace xb::rpki::rtr
