// Hash-table ROA store, mirroring BIRD's roa_check() — and the data structure
// the paper's origin-validation *extension* uses on both hosts (§3.4).
//
// Lookup probes the table once per covering prefix length, from the queried
// length down to the shortest length present in the table. With the typical
// ROA length distribution this is a handful of O(1) probes, which is why the
// extension outperformed FRRouting's native trie walk.
#pragma once

#include <unordered_map>
#include <vector>

#include "rpki/roa.hpp"

namespace xb::rpki {

class RoaHashTable final : public RoaTable {
 public:
  void add(const Roa& roa) override;
  bool remove(const Roa& roa) override;
  [[nodiscard]] Validity validate(const util::Prefix& prefix, bgp::Asn origin) const override;
  [[nodiscard]] std::size_t size() const override { return count_; }

  /// Number of hash probes across all validate() calls (bench telemetry).
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }

 private:
  std::unordered_map<util::Prefix, std::vector<Roa>> buckets_;
  std::uint8_t min_length_ = 33;  // shortest ROA prefix length present
  std::size_t count_ = 0;
  mutable std::uint64_t probes_ = 0;
};

}  // namespace xb::rpki
