// RTR cache server and router-side client over the simulated network.
//
// The cache server versions its ROA set by serial number and serves both
// full synchronisation (Reset Query -> Cache Response, prefixes, End of
// Data) and incremental updates (Serial Notify -> Serial Query -> deltas).
// The client keeps a RoaTable in sync — the live counterpart of the static
// ROA file the paper's DUT loaded.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <functional>
#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "obs/metrics.hpp"
#include "rpki/rtr_pdu.hpp"

namespace xb::rpki::rtr {

/// One announce/withdraw step in the cache's history.
struct Delta {
  bool announce = true;
  Roa roa;
};

class CacheServer {
 public:
  CacheServer(net::EventLoop& loop, std::uint16_t session_id)
      : loop_(loop), session_id_(session_id) {}

  /// Attaches one client connection (the server side of the duplex).
  void attach(net::Duplex::End end);

  /// Applies a change and bumps the serial; clients are notified.
  void announce(const Roa& roa);
  void withdraw(const Roa& roa);
  /// Applies a batch as one serial increment.
  void apply(const std::vector<Delta>& deltas);

  /// Drops history so old serials force a Cache Reset (cache expiry model).
  void forget_history() { history_.clear(); history_base_ = serial_; }

  [[nodiscard]] std::uint32_t serial() const noexcept { return serial_; }
  [[nodiscard]] std::size_t roa_count() const noexcept { return roas_.size(); }

 private:
  struct Connection {
    net::Duplex::End end;
    std::vector<std::uint8_t> rx;
    std::size_t consumed = 0;
  };

  void handle_readable(Connection& conn);
  void handle_pdu(Connection& conn, const Pdu& pdu);
  void send(Connection& conn, const Pdu& pdu);
  void send_full_snapshot(Connection& conn);
  void send_deltas_since(Connection& conn, std::uint32_t serial);
  void notify_all();

  net::EventLoop& loop_;
  std::uint16_t session_id_;
  std::uint32_t serial_ = 0;
  std::vector<Roa> roas_;                 // current full set
  std::deque<std::vector<Delta>> history_;  // history_[i] = deltas of serial base+i+1
  std::uint32_t history_base_ = 0;        // serial the history starts after
  std::vector<std::unique_ptr<Connection>> connections_;
};

class RtrClient {
 public:
  /// Keeps `table` synchronised with the cache reachable through `end`.
  RtrClient(net::EventLoop& loop, net::Duplex::End end, RoaTable& table);

  /// Starts synchronisation (sends a Reset Query).
  void start();

  [[nodiscard]] bool synchronized() const noexcept { return synchronized_; }
  [[nodiscard]] std::uint32_t serial() const noexcept { return serial_; }
  [[nodiscard]] std::uint64_t updates_applied() const noexcept { return updates_applied_; }
  [[nodiscard]] const std::string& last_error() const noexcept { return last_error_; }

  /// Fired after every End of Data (initial sync and each incremental run).
  std::function<void()> on_synchronized;

  /// Attaches the telemetry registry (serial-phase, before start()):
  /// registers xbgp_rtr_* counters — PDUs received, ROA records applied,
  /// completed syncs, cache resets, error reports. The RTR session runs on
  /// the event-loop thread, so all cells use slot 0.
  void set_telemetry(obs::Registry* registry);

 private:
  void handle_readable();
  void handle_pdu(const Pdu& pdu);
  void send(const Pdu& pdu) { end_.write(encode(pdu)); }
  void count(obs::Registry::Id id) noexcept {
    if (registry_ != nullptr) registry_->add(id, 1, 0);
  }

  net::EventLoop& loop_;
  net::Duplex::End end_;
  RoaTable& table_;
  std::vector<std::uint8_t> rx_;
  std::size_t consumed_ = 0;
  std::uint16_t session_id_ = 0;
  std::uint32_t serial_ = 0;
  bool have_session_ = false;
  bool synchronized_ = false;
  bool query_in_flight_ = false;
  std::optional<std::uint32_t> pending_notify_;
  std::uint64_t updates_applied_ = 0;
  std::string last_error_;
  obs::Registry* registry_ = nullptr;
  obs::Registry::Id pdus_rx_ = 0;
  obs::Registry::Id roas_applied_ = 0;
  obs::Registry::Id syncs_ = 0;
  obs::Registry::Id cache_resets_ = 0;
  obs::Registry::Id errors_ = 0;
};

}  // namespace xb::rpki::rtr
