// The RPKI-to-Router protocol, version 0 (RFC 6810) — PDU model and codec.
//
// The paper's DUT "does not implement the RPKI-Rtr protocol [6, 38] but
// loads a file" (§3.4). This module closes that gap: a cache server and a
// router-side client speak the real wire protocol over the simulated
// network, so ROA tables can be synchronised and updated live.
//
// IPv4 scope only, matching the rest of the library; IPv6 PDUs are
// recognised and rejected with an Error Report.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "rpki/roa.hpp"
#include "util/bytes.hpp"

namespace xb::rpki::rtr {

inline constexpr std::uint8_t kVersion = 0;

enum class PduType : std::uint8_t {
  kSerialNotify = 0,
  kSerialQuery = 1,
  kResetQuery = 2,
  kCacheResponse = 3,
  kIpv4Prefix = 4,
  kIpv6Prefix = 6,
  kEndOfData = 7,
  kCacheReset = 8,
  kErrorReport = 10,
};

// RFC 6810 §10 error codes.
enum class ErrorCode : std::uint16_t {
  kCorruptData = 0,
  kInternalError = 1,
  kNoDataAvailable = 2,
  kInvalidRequest = 3,
  kUnsupportedVersion = 4,
  kUnsupportedPduType = 5,
  kWithdrawalOfUnknownRecord = 6,
  kDuplicateAnnouncement = 7,
};

struct SerialNotify {
  std::uint16_t session_id = 0;
  std::uint32_t serial = 0;
  friend bool operator==(const SerialNotify&, const SerialNotify&) = default;
};
struct SerialQuery {
  std::uint16_t session_id = 0;
  std::uint32_t serial = 0;
  friend bool operator==(const SerialQuery&, const SerialQuery&) = default;
};
struct ResetQuery {
  friend bool operator==(const ResetQuery&, const ResetQuery&) = default;
};
struct CacheResponse {
  std::uint16_t session_id = 0;
  friend bool operator==(const CacheResponse&, const CacheResponse&) = default;
};
struct Ipv4Prefix {
  bool announce = true;  // flags bit 0
  Roa roa;
  friend bool operator==(const Ipv4Prefix&, const Ipv4Prefix&) = default;
};
struct EndOfData {
  std::uint16_t session_id = 0;
  std::uint32_t serial = 0;
  friend bool operator==(const EndOfData&, const EndOfData&) = default;
};
struct CacheReset {
  friend bool operator==(const CacheReset&, const CacheReset&) = default;
};
struct ErrorReport {
  ErrorCode code = ErrorCode::kInternalError;
  std::vector<std::uint8_t> erroneous_pdu;
  std::string text;
  friend bool operator==(const ErrorReport&, const ErrorReport&) = default;
};

using Pdu = std::variant<SerialNotify, SerialQuery, ResetQuery, CacheResponse, Ipv4Prefix,
                         EndOfData, CacheReset, ErrorReport>;

[[nodiscard]] PduType type_of(const Pdu& pdu);

/// Serialises one PDU to its RFC 6810 wire form.
[[nodiscard]] std::vector<std::uint8_t> encode(const Pdu& pdu);

class RtrError : public std::runtime_error {
 public:
  RtrError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Scans a receive buffer for one complete PDU. Returns nullopt when more
/// bytes are needed; throws RtrError on malformed input (bad version,
/// unknown type, bad length).
struct Frame {
  Pdu pdu;
  std::size_t consumed = 0;
};
[[nodiscard]] std::optional<Frame> try_decode(std::span<const std::uint8_t> buffer);

}  // namespace xb::rpki::rtr
