#include "rpki/roa_hash.hpp"

namespace xb::rpki {

void RoaHashTable::add(const Roa& roa) {
  buckets_[roa.prefix].push_back(roa);
  if (roa.prefix.length() < min_length_) min_length_ = roa.prefix.length();
  ++count_;
}

bool RoaHashTable::remove(const Roa& roa) {
  auto it = buckets_.find(roa.prefix);
  if (it == buckets_.end()) return false;
  for (auto rit = it->second.begin(); rit != it->second.end(); ++rit) {
    if (*rit == roa) {
      it->second.erase(rit);
      if (it->second.empty()) buckets_.erase(it);
      --count_;
      // min_length_ is left as-is: a stale lower bound only adds probes,
      // never changes results.
      return true;
    }
  }
  return false;
}

Validity RoaHashTable::validate(const util::Prefix& prefix, bgp::Asn origin) const {
  if (count_ == 0) return Validity::kNotFound;
  bool covered = false;
  bool valid = false;
  // Probe every possible covering length, longest first.
  for (int len = prefix.length(); len >= static_cast<int>(min_length_); --len) {
    ++probes_;
    const util::Prefix key(prefix.addr(), static_cast<std::uint8_t>(len));
    auto it = buckets_.find(key);
    if (it == buckets_.end()) continue;
    for (const Roa& roa : it->second) {
      covered = true;
      if (roa.origin == origin && prefix.length() <= roa.max_length) valid = true;
    }
  }
  if (valid) return Validity::kValid;
  return covered ? Validity::kInvalid : Validity::kNotFound;
}

}  // namespace xb::rpki
