// Binary-trie ROA store, mirroring FRRouting's per-lookup trie walk.
//
// Lookup descends the trie bit by bit along the queried prefix, collecting
// ROAs at every covering node — the pointer-chasing walk whose cost the
// paper's §3.4 experiment exposes (the hash-based extension beat it by 10%).
#pragma once

#include <memory>
#include <vector>

#include "rpki/roa.hpp"

namespace xb::rpki {

class RoaTrie final : public RoaTable {
 public:
  void add(const Roa& roa) override;
  bool remove(const Roa& roa) override;
  [[nodiscard]] Validity validate(const util::Prefix& prefix, bgp::Asn origin) const override;
  [[nodiscard]] std::size_t size() const override { return count_; }

  /// Number of trie nodes touched by all validate() calls (bench telemetry).
  [[nodiscard]] std::uint64_t nodes_visited() const noexcept { return nodes_visited_; }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::vector<Roa> roas;  // ROAs whose prefix ends exactly at this node
  };

  Node root_;
  std::size_t count_ = 0;
  mutable std::uint64_t nodes_visited_ = 0;
};

}  // namespace xb::rpki
