#include "rpki/roa_lpfst.hpp"

namespace xb::rpki {

void LpfstRoaTable::add(const Roa& roa) {
  Node* node = &root_;
  const std::uint32_t addr = roa.prefix.addr().value();
  for (std::uint8_t depth = 0; depth < roa.prefix.length(); ++depth) {
    const int bit = (addr >> (31 - depth)) & 1;
    if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
    node = node->child[bit].get();
  }
  node->records.push_back(roa);
  ++count_;
}

bool LpfstRoaTable::remove(const Roa& roa) {
  Node* node = &root_;
  const std::uint32_t addr = roa.prefix.addr().value();
  for (std::uint8_t depth = 0; depth < roa.prefix.length(); ++depth) {
    const int bit = (addr >> (31 - depth)) & 1;
    if (!node->child[bit]) return false;
    node = node->child[bit].get();
  }
  for (auto it = node->records.begin(); it != node->records.end(); ++it) {
    if (*it == roa) {
      node->records.erase(it);
      --count_;
      return true;
    }
  }
  return false;
}

const LpfstRoaTable::Node* LpfstRoaTable::lookup_nth(const util::Prefix& query,
                                                     unsigned skip) const {
  const Node* node = &root_;
  const std::uint32_t addr = query.addr().value();
  for (std::uint8_t depth = 0;; ++depth) {
    ++nodes_visited_;
    if (!node->records.empty()) {
      // A node on the query's path at depth d holds prefixes of length d,
      // which cover the query by construction of the walk.
      if (skip == 0) return node;
      --skip;
    }
    if (depth >= query.length()) return nullptr;
    const Node* next = node->child[(addr >> (31 - depth)) & 1].get();
    if (next == nullptr) return nullptr;
    node = next;
  }
}

Validity LpfstRoaTable::validate(const util::Prefix& prefix, bgp::Asn origin) const {
  bool covered = false;
  bool valid = false;
  // rtrlib's loop: one full re-descent per covering node, plus the final
  // descent that comes back empty.
  for (unsigned nth = 0;; ++nth) {
    const Node* node = lookup_nth(prefix, nth);
    if (node == nullptr) break;
    for (const Roa& roa : node->records) {
      covered = true;
      if (roa.origin == origin && prefix.length() <= roa.max_length) valid = true;
    }
  }
  if (valid) return Validity::kValid;
  return covered ? Validity::kInvalid : Validity::kNotFound;
}

}  // namespace xb::rpki
