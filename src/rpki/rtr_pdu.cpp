#include "rpki/rtr_pdu.hpp"

namespace xb::rpki::rtr {

namespace {

constexpr std::size_t kHeaderSize = 8;

/// Writes the common 8-byte header; `middle` is the 16-bit field that holds
/// the session id, error code, or zero depending on the PDU type.
void header(util::ByteWriter& w, PduType type, std::uint16_t middle, std::uint32_t length) {
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(middle);
  w.u32(length);
}

}  // namespace

PduType type_of(const Pdu& pdu) {
  struct Visitor {
    PduType operator()(const SerialNotify&) const { return PduType::kSerialNotify; }
    PduType operator()(const SerialQuery&) const { return PduType::kSerialQuery; }
    PduType operator()(const ResetQuery&) const { return PduType::kResetQuery; }
    PduType operator()(const CacheResponse&) const { return PduType::kCacheResponse; }
    PduType operator()(const Ipv4Prefix&) const { return PduType::kIpv4Prefix; }
    PduType operator()(const EndOfData&) const { return PduType::kEndOfData; }
    PduType operator()(const CacheReset&) const { return PduType::kCacheReset; }
    PduType operator()(const ErrorReport&) const { return PduType::kErrorReport; }
  };
  return std::visit(Visitor{}, pdu);
}

std::vector<std::uint8_t> encode(const Pdu& pdu) {
  util::ByteWriter w;
  if (const auto* notify = std::get_if<SerialNotify>(&pdu)) {
    header(w, PduType::kSerialNotify, notify->session_id, 12);
    w.u32(notify->serial);
  } else if (const auto* query = std::get_if<SerialQuery>(&pdu)) {
    header(w, PduType::kSerialQuery, query->session_id, 12);
    w.u32(query->serial);
  } else if (std::get_if<ResetQuery>(&pdu) != nullptr) {
    header(w, PduType::kResetQuery, 0, 8);
  } else if (const auto* response = std::get_if<CacheResponse>(&pdu)) {
    header(w, PduType::kCacheResponse, response->session_id, 8);
  } else if (const auto* prefix = std::get_if<Ipv4Prefix>(&pdu)) {
    header(w, PduType::kIpv4Prefix, 0, 20);
    w.u8(prefix->announce ? 1 : 0);
    w.u8(prefix->roa.prefix.length());
    w.u8(prefix->roa.max_length);
    w.u8(0);
    w.u32(prefix->roa.prefix.addr().value());
    w.u32(prefix->roa.origin);
  } else if (const auto* eod = std::get_if<EndOfData>(&pdu)) {
    header(w, PduType::kEndOfData, eod->session_id, 12);
    w.u32(eod->serial);
  } else if (std::get_if<CacheReset>(&pdu) != nullptr) {
    header(w, PduType::kCacheReset, 0, 8);
  } else if (const auto* error = std::get_if<ErrorReport>(&pdu)) {
    const std::uint32_t length = static_cast<std::uint32_t>(
        kHeaderSize + 4 + error->erroneous_pdu.size() + 4 + error->text.size());
    header(w, PduType::kErrorReport, static_cast<std::uint16_t>(error->code), length);
    w.u32(static_cast<std::uint32_t>(error->erroneous_pdu.size()));
    w.bytes(error->erroneous_pdu);
    w.u32(static_cast<std::uint32_t>(error->text.size()));
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(error->text.data()),
                      error->text.size()));
  }
  return std::move(w).take();
}

std::optional<Frame> try_decode(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  const std::uint8_t version = buffer[0];
  const std::uint8_t raw_type = buffer[1];
  const std::uint16_t middle = static_cast<std::uint16_t>((buffer[2] << 8) | buffer[3]);
  const std::uint32_t length = (static_cast<std::uint32_t>(buffer[4]) << 24) |
                               (static_cast<std::uint32_t>(buffer[5]) << 16) |
                               (static_cast<std::uint32_t>(buffer[6]) << 8) | buffer[7];
  if (version != kVersion) {
    throw RtrError(ErrorCode::kUnsupportedVersion,
                   "unsupported RTR version " + std::to_string(version));
  }
  if (length < kHeaderSize || length > 1 << 20) {
    throw RtrError(ErrorCode::kCorruptData, "bad PDU length " + std::to_string(length));
  }
  if (buffer.size() < length) return std::nullopt;

  util::ByteReader body(buffer.subspan(kHeaderSize, length - kHeaderSize));
  auto need = [&](std::size_t n, const char* what) {
    if (body.remaining() != n) {
      throw RtrError(ErrorCode::kCorruptData, std::string("bad length for ") + what);
    }
  };

  Frame frame;
  frame.consumed = length;
  switch (static_cast<PduType>(raw_type)) {
    case PduType::kSerialNotify:
      need(4, "Serial Notify");
      frame.pdu = SerialNotify{middle, body.u32()};
      return frame;
    case PduType::kSerialQuery:
      need(4, "Serial Query");
      frame.pdu = SerialQuery{middle, body.u32()};
      return frame;
    case PduType::kResetQuery:
      need(0, "Reset Query");
      frame.pdu = ResetQuery{};
      return frame;
    case PduType::kCacheResponse:
      need(0, "Cache Response");
      frame.pdu = CacheResponse{middle};
      return frame;
    case PduType::kIpv4Prefix: {
      need(12, "IPv4 Prefix");
      Ipv4Prefix prefix;
      prefix.announce = (body.u8() & 1) != 0;
      const std::uint8_t len = body.u8();
      const std::uint8_t max_len = body.u8();
      (void)body.u8();  // zero
      const std::uint32_t addr = body.u32();
      const std::uint32_t asn = body.u32();
      if (len > 32 || max_len > 32 || max_len < len) {
        throw RtrError(ErrorCode::kCorruptData, "bad IPv4 prefix lengths");
      }
      prefix.roa = Roa{util::Prefix(util::Ipv4Addr(addr), len), max_len, asn};
      frame.pdu = prefix;
      return frame;
    }
    case PduType::kIpv6Prefix:
      throw RtrError(ErrorCode::kUnsupportedPduType, "IPv6 prefixes not supported");
    case PduType::kEndOfData:
      need(4, "End of Data");
      frame.pdu = EndOfData{middle, body.u32()};
      return frame;
    case PduType::kCacheReset:
      need(0, "Cache Reset");
      frame.pdu = CacheReset{};
      return frame;
    case PduType::kErrorReport: {
      ErrorReport error;
      error.code = static_cast<ErrorCode>(middle);
      const std::uint32_t pdu_len = body.u32();
      if (pdu_len > body.remaining()) {
        throw RtrError(ErrorCode::kCorruptData, "bad encapsulated PDU length");
      }
      auto pdu_bytes = body.bytes(pdu_len);
      error.erroneous_pdu.assign(pdu_bytes.begin(), pdu_bytes.end());
      const std::uint32_t text_len = body.u32();
      if (text_len != body.remaining()) {
        throw RtrError(ErrorCode::kCorruptData, "bad error text length");
      }
      auto text = body.bytes(text_len);
      error.text.assign(reinterpret_cast<const char*>(text.data()), text.size());
      frame.pdu = std::move(error);
      return frame;
    }
  }
  throw RtrError(ErrorCode::kUnsupportedPduType,
                 "unsupported PDU type " + std::to_string(raw_type));
}

}  // namespace xb::rpki::rtr
