#include "rpki/loader.hpp"

#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace xb::rpki {

std::vector<Roa> make_roa_set(std::span<const AnnouncedRoute> routes,
                              const RoaSetParams& params) {
  util::Rng rng(params.seed);
  std::vector<Roa> out;
  out.reserve(routes.size());
  for (const auto& route : routes) {
    const double draw = rng.unit();
    if (draw < params.valid_fraction) {
      out.push_back(Roa{route.prefix, route.prefix.length(), route.origin});
    } else if (rng.chance(params.invalid_share_of_rest)) {
      // Covering ROA with a different origin AS -> Invalid.
      out.push_back(Roa{route.prefix, route.prefix.length(), route.origin + 1});
    }
    // else: no ROA -> NotFound.
  }
  return out;
}

void fill_table(RoaTable& table, std::span<const Roa> roas) {
  for (const auto& roa : roas) table.add(roa);
}

std::string to_text(std::span<const Roa> roas) {
  std::ostringstream os;
  for (const auto& roa : roas) {
    os << roa.prefix.str() << "-" << static_cast<int>(roa.max_length) << " " << roa.origin
       << "\n";
  }
  return os.str();
}

std::vector<Roa> from_text(const std::string& text) {
  std::vector<Roa> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto dash = line.find('-');
    const auto space = line.find(' ', dash);
    if (dash == std::string::npos || space == std::string::npos) {
      throw std::invalid_argument("bad ROA line: " + line);
    }
    Roa roa;
    roa.prefix = util::Prefix::parse(line.substr(0, dash));
    roa.max_length = static_cast<std::uint8_t>(std::stoi(line.substr(dash + 1, space - dash - 1)));
    roa.origin = static_cast<bgp::Asn>(std::stoul(line.substr(space + 1)));
    out.push_back(roa);
  }
  return out;
}

}  // namespace xb::rpki
