// The shared BGP speaker engine, parameterised by a host attribute core.
//
// Router<Core> implements the RFC 4271 machinery every BGP implementation
// shares — sessions, Adj-RIB-In, the decision process, Loc-RIB, export
// processing, Adj-RIB-Out, message packing — while all attribute storage
// and conversion goes through `Core` (FirCore = FRR-like decomposed structs,
// WrenCore = BIRD-like wire-order ea_list). Router also *is* the xBGP host:
// it implements xbgp::HostApi and invokes the VMM at the five insertion
// points of the paper's Fig. 2:
//
//   (1) BGP_RECEIVE_MESSAGE   in handle_update(), before conversion
//   (2) BGP_INBOUND_FILTER    per NLRI, before Adj-RIB-In installation
//   (3) BGP_DECISION          per pairwise best-route comparison
//   (4) BGP_OUTBOUND_FILTER   per route per peer, before Adj-RIB-Out
//   (5) BGP_ENCODE_MESSAGE    per outgoing attribute group
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/decision.hpp"
#include "bgp/peer_session.hpp"
#include "bgp/policy.hpp"
#include "hosts/engine/update_builder.hpp"
#include "igp/igp_table.hpp"
#include "rpki/roa.hpp"
#include "util/log.hpp"
#include "xbgp/vmm.hpp"

namespace xb::hosts::engine {

using PeerId = std::size_t;
inline constexpr PeerId kLocalRoute = static_cast<PeerId>(-1);

struct RouterStats {
  std::uint64_t updates_in = 0;
  std::uint64_t updates_out = 0;
  std::uint64_t prefixes_in = 0;
  std::uint64_t prefixes_accepted = 0;
  std::uint64_t prefixes_rejected_in = 0;
  std::uint64_t withdrawals_in = 0;
  std::uint64_t exports_rejected = 0;
  std::uint64_t loop_rejected = 0;
  std::uint64_t malformed_updates = 0;
  std::uint64_t extension_faults = 0;
  std::uint64_t ov_valid = 0;
  std::uint64_t ov_invalid = 0;
  std::uint64_t ov_not_found = 0;
};

template <typename Core>
class Router final : public xbgp::HostApi {
 public:
  using Attrs = typename Core::Attrs;
  using AttrsPtr = std::shared_ptr<const Attrs>;

  struct Config {
    std::string name = "router";
    bgp::Asn asn = 0;
    bgp::RouterId router_id = 0;
    util::Ipv4Addr address;  // loopback / nexthop-self address
    std::uint32_t cluster_id = 0;  // 0 -> defaults to router_id
    /// Native RFC 4456 route reflection. Off when the RR use case runs as
    /// extension bytecode instead.
    bool native_route_reflector = false;
    /// Native RFC 6811 origin validation: consulted when non-null.
    const rpki::RoaTable* roa_table = nullptr;
    /// Reject Invalid routes (default mirrors the paper's §3.4 setup:
    /// "checks the validity ... but does not discard the invalid ones").
    bool ov_reject_invalid = false;
    const igp::IgpTable* igp = nullptr;
    /// Per-router import/export policy (route-maps) evaluated by the native
    /// default of the inbound/outbound filter operations. Real deployments
    /// always carry such policy (FRR route-maps, BIRD filters); the Fig. 4
    /// benchmarks configure it in both native and extension modes.
    const bgp::policy::RouteMap* import_policy = nullptr;
    const bgp::policy::RouteMap* export_policy = nullptr;
    std::uint16_t hold_time = bgp::kDefaultHoldTime;
    std::uint32_t keepalive_interval = bgp::kDefaultKeepaliveTime;
    /// Named configuration blobs served to extensions via get_xtra.
    std::map<std::string, std::vector<std::uint8_t>, std::less<>> xtra;
    xbgp::Vmm::Options vmm_options;
  };

  struct PeerConfig {
    std::string name;
    bgp::Asn asn = 0;
    util::Ipv4Addr address;
    bool rr_client = false;
    /// Rewrite the nexthop to our own address when exporting to this peer
    /// (the usual configuration for eBGP-learned routes entering iBGP).
    bool next_hop_self = false;
  };

  Router(net::EventLoop& loop, Config config)
      : loop_(loop), cfg_(std::move(config)), vmm_(*this, cfg_.vmm_options) {
    if (cfg_.cluster_id == 0) cfg_.cluster_id = cfg_.router_id;
    set_xtra_u32(xbgp::xtra::kRouterId, cfg_.router_id);
    set_xtra_u32(xbgp::xtra::kClusterId, cfg_.cluster_id);
  }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // --- configuration ----------------------------------------------------------

  PeerId add_peer(net::Duplex::End end, PeerConfig pc) {
    bgp::PeerSession::Config sc;
    sc.local_asn = cfg_.asn;
    sc.peer_asn = pc.asn;
    sc.local_id = cfg_.router_id;
    sc.local_addr = cfg_.address;
    sc.peer_addr = pc.address;
    sc.hold_time = cfg_.hold_time;
    sc.keepalive_interval = cfg_.keepalive_interval;
    auto state = std::make_unique<PeerState>(loop_, end, sc);
    state->id = peers_.size();
    state->cfg = std::move(pc);
    PeerState* raw = state.get();
    state->session.on_established = [this, raw] { on_peer_established(*raw); };
    state->session.on_update = [this, raw](bgp::UpdateMessage&& update,
                                           std::span<const std::uint8_t> wire) {
      handle_update(*raw, std::move(update), wire);
    };
    state->session.on_down = [this, raw](const std::string& reason) {
      on_peer_down(*raw, reason);
    };
    state->session.on_route_refresh = [this, raw] {
      // RFC 2918: re-run export processing for everything we advertise to
      // this peer (adj-rib-out rebuild from the current Loc-RIB + policy).
      for (const auto& [prefix, entry] : loc_rib_) queue_export(*raw, prefix);
      schedule_flush();
    };
    peers_.push_back(std::move(state));
    return peers_.size() - 1;
  }

  void start() {
    for (auto& peer : peers_) peer->session.start();
  }

  /// Loads extension bytecode per the manifest (verifies; runs kInit).
  void load_extensions(const xbgp::Manifest& manifest) { vmm_.load(manifest); }

  /// Asks a peer to resend its routes (RFC 2918), e.g. after changing
  /// import policy or loading an inbound extension at runtime.
  void request_route_refresh(PeerId id) { peers_.at(id)->session.send_route_refresh(); }

  /// Re-runs export processing for the whole Loc-RIB towards every peer —
  /// what a daemon does when outbound policy or the IGP changes (e.g. after
  /// an SPF run moves nexthop metrics, which Listing-1 style filters read).
  void reevaluate_exports() {
    for (const auto& [prefix, entry] : loc_rib_) queue_export_all(prefix);
    schedule_flush();
  }

  void set_xtra(std::string key, std::vector<std::uint8_t> value) {
    cfg_.xtra[std::move(key)] = std::move(value);
  }
  void set_xtra_u32(std::string key, std::uint32_t value) {
    std::vector<std::uint8_t> blob(sizeof(value));
    std::memcpy(blob.data(), &value, sizeof(value));
    set_xtra(std::move(key), std::move(blob));
  }

  /// Originates a local route (ORIGIN IGP, empty AS_PATH, nexthop self).
  void originate(const util::Prefix& prefix) {
    bgp::AttributeSet set;
    set.put(bgp::make_origin(bgp::Origin::kIgp));
    set.put(bgp::AsPath{}.to_attr());
    set.put(bgp::make_next_hop(cfg_.address));
    auto attrs = std::make_shared<Attrs>(Core::from_wire(set, {}));
    local_routes_[prefix] = attrs;
    run_decision(prefix);
    schedule_flush();
  }

  // --- observation ---------------------------------------------------------------

  struct LocRibEntry {
    PeerId from = kLocalRoute;
    AttrsPtr attrs;
    std::uint32_t meta = 0;
  };

  [[nodiscard]] const LocRibEntry* best(const util::Prefix& prefix) const {
    auto it = loc_rib_.find(prefix);
    return it == loc_rib_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t loc_rib_size() const noexcept { return loc_rib_.size(); }
  [[nodiscard]] std::size_t adj_rib_in_size(PeerId id) const {
    return peers_.at(id)->adj_rib_in.size();
  }
  [[nodiscard]] std::size_t adj_rib_out_size(PeerId id) const {
    return peers_.at(id)->adj_rib_out.size();
  }
  [[nodiscard]] const AttrsPtr* adj_rib_out_lookup(PeerId id, const util::Prefix& p) const {
    auto& rib = peers_.at(id)->adj_rib_out;
    auto it = rib.find(p);
    return it == rib.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::uint32_t route_meta(PeerId id, const util::Prefix& p) const {
    auto& rib = peers_.at(id)->adj_rib_in;
    auto it = rib.find(p);
    return it == rib.end() ? 0 : it->second.meta;
  }
  [[nodiscard]] bgp::PeerSession& session(PeerId id) { return peers_.at(id)->session; }
  [[nodiscard]] const RouterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] xbgp::Vmm& vmm() noexcept { return vmm_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::optional<util::Ipv4Addr> fib_lookup(const util::Prefix& p) const {
    auto it = fib_.find(p);
    return it == fib_.end() ? std::nullopt : std::optional(it->second);
  }

  // =============================== HostApi ======================================

  bool peer_info(const xbgp::ExecContext& ctx, xbgp::PeerInfo& out) override {
    return fill_peer_info(static_cast<PeerState*>(ctx.peer), out);
  }
  bool src_peer_info(const xbgp::ExecContext& ctx, xbgp::PeerInfo& out) override {
    return fill_peer_info(static_cast<PeerState*>(ctx.src_peer), out);
  }

  std::optional<bgp::WireAttr> get_attr(const xbgp::ExecContext& ctx,
                                        std::uint8_t code) override {
    if (ctx.incoming != nullptr) {
      const bgp::WireAttr* attr = ctx.incoming->find(code);
      return attr == nullptr ? std::nullopt : std::optional(*attr);
    }
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr) return std::nullopt;
    return Core::get_attr(*route->attrs, code);
  }

  std::optional<bgp::WireAttr> get_attr_alt(const xbgp::ExecContext& ctx,
                                            std::uint8_t code) override {
    auto* route = static_cast<RouteCtx*>(ctx.route_alt);
    if (route == nullptr) return std::nullopt;
    return Core::get_attr(*route->attrs, code);
  }

  bool set_attr(xbgp::ExecContext& ctx, bgp::WireAttr attr) override {
    if (ctx.incoming != nullptr) {
      ctx.ext_added_codes.push_back(attr.code);
      ctx.incoming->put(std::move(attr));
      return true;
    }
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr || !route->mutable_attrs) return false;
    return Core::set_attr(*route->mutable_attrs, std::move(attr));
  }

  bool add_attr(xbgp::ExecContext& ctx, bgp::WireAttr attr) override {
    if (ctx.incoming == nullptr) return false;
    ctx.ext_added_codes.push_back(attr.code);
    ctx.incoming->put(std::move(attr));
    return true;
  }

  bool nexthop_info(const xbgp::ExecContext& ctx, xbgp::NexthopInfo& out) override {
    std::optional<util::Ipv4Addr> nh;
    if (ctx.incoming != nullptr) {
      if (const bgp::WireAttr* attr = ctx.incoming->find(bgp::attr_code::kNextHop)) {
        nh = bgp::parse_next_hop(*attr);
      }
    } else if (auto* route = static_cast<RouteCtx*>(ctx.route)) {
      nh = Core::next_hop(*route->attrs);
    }
    if (!nh) return false;
    out.addr = nh->value();
    out.igp_metric = igp_metric(*nh);
    out.reachable = out.igp_metric != igp::kInfMetric ? 1 : 0;
    return true;
  }

  std::span<const std::uint8_t> get_xtra(std::string_view key) override {
    auto it = cfg_.xtra.find(key);
    if (it == cfg_.xtra.end()) return {};
    return it->second;
  }

  bool write_buf(xbgp::ExecContext& ctx, std::span<const std::uint8_t> data) override {
    if (ctx.out == nullptr) return false;
    ctx.out->bytes(data);
    return true;
  }

  bool rib_add_route(const util::Prefix& prefix, util::Ipv4Addr nexthop) override {
    fib_[prefix] = nexthop;
    return true;
  }
  std::optional<util::Ipv4Addr> rib_lookup(const util::Prefix& prefix) override {
    return fib_lookup(prefix);
  }

  bool set_route_meta(xbgp::ExecContext& ctx, std::uint32_t value) override {
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr || route->meta == nullptr) return false;
    *route->meta = value;
    return true;
  }
  std::optional<std::uint32_t> get_route_meta(const xbgp::ExecContext& ctx) override {
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr || route->meta == nullptr) return std::nullopt;
    return *route->meta;
  }

  void notify_extension_fault(xbgp::Op op, std::string_view program,
                              std::string_view detail) override {
    ++stats_.extension_faults;
    util::log_warn(cfg_.name, ": extension '", program, "' faulted at ", to_string(op), ": ",
                   detail, " (fell back to native)");
  }

  void ebpf_print(std::string_view message) override {
    util::log_info(cfg_.name, " [ebpf] ", message);
  }

 private:
  // ------------------------------------------------------------------------------
  struct AdjInRoute {
    AttrsPtr attrs;
    std::uint32_t meta = 0;
  };

  struct PeerState {
    PeerId id = 0;
    PeerConfig cfg;
    bgp::PeerSession session;
    std::unordered_map<util::Prefix, AdjInRoute> adj_rib_in;
    std::unordered_map<util::Prefix, AttrsPtr> adj_rib_out;
    std::vector<util::Prefix> pending;           // export work list, ordered
    std::unordered_set<util::Prefix> pending_set;  // dedupe for the work list

    PeerState(net::EventLoop& loop, net::Duplex::End end, bgp::PeerSession::Config sc)
        : session(loop, end, sc) {}
  };

  /// The host-side route handle behind ExecContext::route (hidden argument).
  struct RouteCtx {
    util::Prefix prefix;
    const Attrs* attrs = nullptr;     // read view
    Attrs* mutable_attrs = nullptr;   // set_attr target (null = read-only ctx)
    std::uint32_t* meta = nullptr;
    PeerState* src = nullptr;         // learned-from peer (null for local)
  };

  // --- peer/session events -------------------------------------------------------

  void on_peer_established(PeerState& peer) {
    util::log_info(cfg_.name, ": session with ", peer.cfg.name, " established");
    // Initial advertisement: the whole Loc-RIB plus local routes.
    for (const auto& [prefix, entry] : loc_rib_) queue_export(peer, prefix);
    schedule_flush();
  }

  void on_peer_down(PeerState& peer, const std::string& reason) {
    util::log_warn(cfg_.name, ": session with ", peer.cfg.name, " down: ", reason);
    // Standard BGP: all routes learned from the peer are invalidated.
    std::vector<util::Prefix> lost;
    lost.reserve(peer.adj_rib_in.size());
    for (const auto& [prefix, route] : peer.adj_rib_in) lost.push_back(prefix);
    peer.adj_rib_in.clear();
    peer.adj_rib_out.clear();
    for (const auto& prefix : lost) run_decision(prefix);
    schedule_flush();
  }

  // --- inbound pipeline -------------------------------------------------------------

  void handle_update(PeerState& peer, bgp::UpdateMessage&& update,
                     std::span<const std::uint8_t> wire) {
    ++stats_.updates_in;

    // (1) BGP_RECEIVE_MESSAGE: raw wire bytes + the parsed neutral attribute
    // set. Extensions recover custom attributes here (e.g. GeoLoc) before
    // the host conversion would drop them.
    xbgp::ExecContext rx;
    rx.op = xbgp::Op::kReceiveMessage;
    rx.peer = &peer;
    rx.src_peer = &peer;
    rx.incoming = &update.attrs;
    rx.add_arg(xbgp::arg::kRawMessage, wire);
    vmm_.execute(xbgp::Op::kReceiveMessage, rx,
                 [] { return xbgp::kOpOk; });

    for (const auto& prefix : update.withdrawn) {
      ++stats_.withdrawals_in;
      if (peer.adj_rib_in.erase(prefix) > 0) run_decision(prefix);
    }

    if (!update.nlri.empty()) {
      process_nlri(peer, update, rx.ext_added_codes);
    }
    schedule_flush();
  }

  void process_nlri(PeerState& peer, const bgp::UpdateMessage& update,
                    const std::vector<std::uint8_t>& keep_codes) {
    const bool ebgp = peer.session.peer_type() == bgp::PeerType::kEbgp;

    // Mandatory attribute checks (RFC 4271 §6.3): treat-as-withdraw.
    if (!update.attrs.has(bgp::attr_code::kOrigin) ||
        !update.attrs.has(bgp::attr_code::kAsPath) ||
        !update.attrs.has(bgp::attr_code::kNextHop)) {
      ++stats_.malformed_updates;
      for (const auto& prefix : update.nlri) {
        if (peer.adj_rib_in.erase(prefix) > 0) run_decision(prefix);
      }
      return;
    }

    // Convert the neutral set to this host's representation once per update;
    // all NLRI of the message share it (attribute interning, as real
    // implementations do).
    auto shared = std::make_shared<Attrs>(Core::from_wire(update.attrs, keep_codes));

    // eBGP loop prevention: our own AS in AS_PATH.
    if (ebgp && Core::as_path_contains(*shared, cfg_.asn)) {
      stats_.loop_rejected += update.nlri.size();
      return;
    }

    for (const auto& prefix : update.nlri) {
      ++stats_.prefixes_in;
      std::uint32_t meta = 0;
      RouteCtx route{prefix, shared.get(), shared.get(), &meta, &peer};

      // (2) BGP_INBOUND_FILTER.
      xbgp::ExecContext ctx;
      ctx.op = xbgp::Op::kInboundFilter;
      ctx.peer = &peer;
      ctx.src_peer = &peer;
      ctx.route = &route;
      xbgp::PrefixArg parg{prefix.addr().value(), prefix.length(), {}};
      ctx.add_arg(xbgp::arg::kPrefix,
                  std::span(reinterpret_cast<const std::uint8_t*>(&parg), sizeof(parg)));

      const std::uint64_t verdict =
          vmm_.execute(xbgp::Op::kInboundFilter, ctx,
                       [&] { return native_import_policy(route, peer); });

      if (verdict != xbgp::kFilterAccept) {
        ++stats_.prefixes_rejected_in;
        if (peer.adj_rib_in.erase(prefix) > 0) run_decision(prefix);
        continue;
      }
      ++stats_.prefixes_accepted;
      count_ov(meta);
      peer.adj_rib_in[prefix] = AdjInRoute{shared, meta};
      run_decision(prefix);
    }
  }

  /// The native (default) import policy: RFC 4456 loop prevention when this
  /// router is a native route reflector, RFC 6811 origin validation when a
  /// ROA table is configured.
  std::uint64_t native_import_policy(RouteCtx& route, PeerState& peer) {
    if (cfg_.native_route_reflector &&
        peer.session.peer_type() == bgp::PeerType::kIbgp) {
      if (auto originator = Core::originator_id(*route.attrs);
          originator && *originator == cfg_.router_id) {
        return xbgp::kFilterReject;
      }
      if (Core::cluster_list_contains(*route.attrs, cfg_.cluster_id)) {
        return xbgp::kFilterReject;
      }
    }
    if (cfg_.roa_table != nullptr) {
      const auto origin = Core::origin_asn(*route.attrs);
      const rpki::Validity validity =
          origin ? cfg_.roa_table->validate(route.prefix, *origin)
                 : rpki::Validity::kNotFound;
      *route.meta = static_cast<std::uint32_t>(validity);
      if (cfg_.ov_reject_invalid && validity == rpki::Validity::kInvalid) {
        return xbgp::kFilterReject;
      }
    }
    if (cfg_.import_policy != nullptr &&
        !run_policy(*cfg_.import_policy, route, peer)) {
      return xbgp::kFilterReject;
    }
    return xbgp::kFilterAccept;
  }

  /// Evaluates a route-map against the route. Set actions apply to the
  /// route's mutable attributes (when the context allows mutation) and the
  /// metadata word (e.g. `match rpki` records the validation state).
  bool run_policy(const bgp::policy::RouteMap& map, RouteCtx& route, PeerState& peer) {
    bgp::policy::RouteFacts facts;
    facts.prefix = route.prefix;
    const Attrs& attrs = *route.attrs;
    facts.origin_asn = Core::origin_asn(attrs);
    Core::flatten_as_path(attrs, scratch_path_);
    facts.as_path = scratch_path_;
    facts.next_hop = Core::next_hop(attrs);
    if (facts.next_hop) facts.igp_metric_to_nexthop = igp_metric(*facts.next_hop);
    facts.local_pref = Core::local_pref_or(attrs, 100);
    facts.med = Core::med(attrs);
    Core::communities_of(attrs, scratch_comms_);
    facts.communities = scratch_comms_;
    facts.peer_type = peer.session.peer_type();
    facts.peer_asn = peer.session.config().peer_asn;

    const auto verdict = map.evaluate(facts);
    if (facts.new_meta && route.meta != nullptr) *route.meta = *facts.new_meta;
    if (verdict.permitted && route.mutable_attrs != nullptr) {
      if (facts.new_local_pref) Core::set_local_pref(*route.mutable_attrs, *facts.new_local_pref);
    }
    return verdict.permitted;
  }

  void count_ov(std::uint32_t meta) {
    switch (meta) {
      case xbgp::kMetaOvValid: ++stats_.ov_valid; break;
      case xbgp::kMetaOvInvalid: ++stats_.ov_invalid; break;
      default: ++stats_.ov_not_found; break;
    }
  }

  // --- decision process ----------------------------------------------------------

  void run_decision(const util::Prefix& prefix) {
    // Gather candidates: local routes win outright (administrative weight),
    // otherwise the best Adj-RIB-In entry across peers.
    LocRibEntry winner;
    bool have = false;
    if (auto it = local_routes_.find(prefix); it != local_routes_.end()) {
      winner = LocRibEntry{kLocalRoute, it->second, 0};
      have = true;
    } else {
      for (auto& peer : peers_) {
        auto it = peer->adj_rib_in.find(prefix);
        if (it == peer->adj_rib_in.end()) continue;
        LocRibEntry candidate{peer->id, it->second.attrs, it->second.meta};
        if (!have) {
          winner = std::move(candidate);
          have = true;
          continue;
        }
        if (candidate_better(prefix, candidate, winner)) winner = std::move(candidate);
      }
    }

    auto cur = loc_rib_.find(prefix);
    if (!have) {
      if (cur != loc_rib_.end()) {
        loc_rib_.erase(cur);
        fib_.erase(prefix);
        queue_export_all(prefix);
      }
      return;
    }
    const bool changed = cur == loc_rib_.end() || cur->second.attrs != winner.attrs ||
                         cur->second.from != winner.from;
    if (changed) {
      if (auto nh = Core::next_hop(*winner.attrs)) fib_[prefix] = *nh;
      loc_rib_[prefix] = winner;
      queue_export_all(prefix);
    }
  }

  /// Pairwise comparison, overridable at the BGP_DECISION insertion point.
  bool candidate_better(const util::Prefix& prefix, const LocRibEntry& cand,
                        const LocRibEntry& best) {
    auto native = [&]() -> std::uint64_t {
      return bgp::better(make_view(cand), make_view(best)) ? xbgp::kDecisionTakeNew
                                                           : xbgp::kDecisionKeepOld;
    };
    if (!vmm_.any_attached(xbgp::Op::kDecision)) return native() == xbgp::kDecisionTakeNew;

    std::uint32_t cand_meta = cand.meta;
    std::uint32_t best_meta = best.meta;
    RouteCtx cand_route{prefix, cand.attrs.get(), nullptr, &cand_meta, peer_of(cand.from)};
    RouteCtx best_route{prefix, best.attrs.get(), nullptr, &best_meta, peer_of(best.from)};
    xbgp::ExecContext ctx;
    ctx.op = xbgp::Op::kDecision;
    ctx.route = &cand_route;       // candidate is the primary route
    ctx.route_alt = &best_route;   // reachable via the get_attr_alt helper
    ctx.peer = peer_of(cand.from);
    ctx.src_peer = peer_of(best.from);
    xbgp::PrefixArg parg{prefix.addr().value(), prefix.length(), {}};
    ctx.add_arg(xbgp::arg::kPrefix,
                std::span(reinterpret_cast<const std::uint8_t*>(&parg), sizeof(parg)));
    return vmm_.execute(xbgp::Op::kDecision, ctx, native) == xbgp::kDecisionTakeNew;
  }

  bgp::RouteView make_view(const LocRibEntry& entry) const {
    bgp::RouteView view;
    const Attrs& attrs = *entry.attrs;
    view.local_pref = Core::local_pref_or(attrs, 100);
    view.as_path_length = Core::as_path_length(attrs);
    view.origin = Core::origin(attrs);
    view.med = Core::med(attrs);
    view.neighbor_as = Core::first_asn(attrs);
    view.cluster_list_length = Core::cluster_list_length(attrs);
    if (entry.from == kLocalRoute) {
      view.peer_type = bgp::PeerType::kIbgp;
      view.local_pref = 1u << 30;  // administrative weight: local wins
      view.peer_router_id = cfg_.router_id;
      view.peer_addr = cfg_.address;
      view.igp_metric_to_nexthop = 0;
      return view;
    }
    const PeerState& peer = *peers_[entry.from];
    view.peer_type = peer.session.peer_type();
    // RFC 4456 §9: use ORIGINATOR_ID in place of the router id if present.
    view.peer_router_id = Core::originator_id(attrs).value_or(peer.session.peer_id());
    view.peer_addr = peer.cfg.address;
    if (auto nh = Core::next_hop(attrs)) {
      view.igp_metric_to_nexthop = igp_metric(*nh);
    }
    return view;
  }

  PeerState* peer_of(PeerId id) {
    return id == kLocalRoute ? nullptr : peers_[id].get();
  }

  std::uint32_t igp_metric(util::Ipv4Addr nexthop) const {
    if (cfg_.igp == nullptr) return 0;
    // Unknown nexthops are treated as directly connected (metric 0), which
    // is how the testbed models single-hop eBGP peers outside the IGP.
    return cfg_.igp->metric_to(nexthop).value_or(0);
  }

  // --- export pipeline --------------------------------------------------------------

  void queue_export(PeerState& peer, const util::Prefix& prefix) {
    if (!peer.pending_set.insert(prefix).second) return;
    peer.pending.push_back(prefix);
  }

  void queue_export_all(const util::Prefix& prefix) {
    for (auto& peer : peers_) queue_export(*peer, prefix);
  }

  void schedule_flush() {
    if (flush_scheduled_) return;
    flush_scheduled_ = true;
    loop_.post([this] {
      flush_scheduled_ = false;
      for (auto& peer : peers_) flush_peer(*peer);
    });
  }

  void flush_peer(PeerState& peer) {
    if (peer.pending.empty()) return;
    if (!peer.session.established()) return;  // re-announced on establishment

    UpdateBuilder builder;
    // Group state: routes sharing the source attrs object and producing
    // equal export attrs share one encoded attribute section.
    const Attrs* group_src = nullptr;
    PeerId group_from = kLocalRoute;
    bool group_accepted = false;
    std::shared_ptr<Attrs> group_attrs;

    for (const util::Prefix& prefix : peer.pending) {
      auto best_it = loc_rib_.find(prefix);
      const bool had = peer.adj_rib_out.contains(prefix);

      // No best route (or split horizon): withdraw if previously advertised.
      if (best_it == loc_rib_.end() || best_it->second.from == peer.id) {
        if (had) {
          peer.adj_rib_out.erase(prefix);
          builder.withdraw_prefix(prefix);
        }
        continue;
      }
      const LocRibEntry& best = best_it->second;

      if (group_src != best.attrs.get() || group_from != best.from) {
        // New source group: run export processing once for the group.
        group_src = best.attrs.get();
        group_from = best.from;
        group_attrs = nullptr;
        group_accepted = export_group(peer, prefix, best, group_attrs, builder);
      } else if (group_accepted) {
        // Same group: per-route hook invocation with the shared work copy.
        std::uint32_t meta = best.meta;
        RouteCtx route{prefix, group_attrs.get(), nullptr, &meta, peer_of(best.from)};
        if (!run_outbound_filter(peer, route, best)) {
          if (had) {
            peer.adj_rib_out.erase(prefix);
            builder.withdraw_prefix(prefix);
          }
          continue;
        }
      }

      if (!group_accepted) {
        ++stats_.exports_rejected;
        if (had) {
          peer.adj_rib_out.erase(prefix);
          builder.withdraw_prefix(prefix);
        }
        continue;
      }
      peer.adj_rib_out[prefix] = group_attrs;
      builder.add_prefix(prefix);
    }

    for (auto& wire : builder.finish()) {
      peer.session.send_bytes(wire);
      peer.session.count_update_sent();
      ++stats_.updates_out;
    }
    peer.pending.clear();
    peer.pending_set.clear();
  }

  /// Export processing for the first route of a group: copy the source
  /// attributes, run the outbound filter (4), apply the standard export
  /// transform, encode natively and run the encode hook (5).
  bool export_group(PeerState& peer, const util::Prefix& prefix, const LocRibEntry& best,
                    std::shared_ptr<Attrs>& out_attrs, UpdateBuilder& builder) {
    auto work = std::make_shared<Attrs>(*best.attrs);  // per-group working copy
    std::uint32_t meta = best.meta;
    RouteCtx route{prefix, work.get(), work.get(), &meta, peer_of(best.from)};

    if (!run_outbound_filter(peer, route, best)) {
      ++stats_.exports_rejected;
      return false;
    }

    apply_export_transform(*work, peer, best);

    // Encode: native attributes, then the BGP_ENCODE_MESSAGE chain for
    // extension-managed attributes (write_buf appends to this writer).
    util::ByteWriter attr_bytes;
    Core::encode_native(*work, attr_bytes);
    xbgp::ExecContext ctx;
    ctx.op = xbgp::Op::kEncodeMessage;
    ctx.peer = &peer;
    ctx.src_peer = peer_of(best.from);
    RouteCtx enc_route{prefix, work.get(), nullptr, &meta, peer_of(best.from)};
    ctx.route = &enc_route;
    ctx.out = &attr_bytes;
    vmm_.execute(xbgp::Op::kEncodeMessage, ctx, [] { return xbgp::kOpOk; });

    builder.begin_group(attr_bytes.view());
    out_attrs = std::move(work);
    return true;
  }

  bool run_outbound_filter(PeerState& peer, RouteCtx& route, const LocRibEntry& best) {
    xbgp::ExecContext ctx;
    ctx.op = xbgp::Op::kOutboundFilter;
    ctx.peer = &peer;
    ctx.src_peer = peer_of(best.from);
    ctx.route = &route;
    xbgp::PrefixArg parg{route.prefix.addr().value(), route.prefix.length(), {}};
    ctx.add_arg(xbgp::arg::kPrefix,
                std::span(reinterpret_cast<const std::uint8_t*>(&parg), sizeof(parg)));
    const std::uint64_t verdict =
        vmm_.execute(xbgp::Op::kOutboundFilter, ctx,
                     [&] { return native_export_policy(peer, route, best); });
    return verdict == xbgp::kFilterAccept;
  }

  /// Native (default) export policy. Implements the iBGP split-horizon rule
  /// and, when this router is a native route reflector, RFC 4456 reflection
  /// (which mutates the working copy: ORIGINATOR_ID + CLUSTER_LIST).
  std::uint64_t native_export_policy(PeerState& dst, RouteCtx& route,
                                     const LocRibEntry& best) {
    const bool from_ibgp = best.from != kLocalRoute &&
                           peers_[best.from]->session.peer_type() == bgp::PeerType::kIbgp;
    const bool to_ibgp = dst.session.peer_type() == bgp::PeerType::kIbgp;
    if (from_ibgp && to_ibgp) {
      if (!cfg_.native_route_reflector) return xbgp::kFilterReject;
      const bool from_client = peers_[best.from]->cfg.rr_client;
      const bool to_client = dst.cfg.rr_client;
      if (!from_client && !to_client) return xbgp::kFilterReject;
      if (route.mutable_attrs != nullptr) {
        Core::reflect(*route.mutable_attrs, peers_[best.from]->session.peer_id(),
                      cfg_.cluster_id);
      }
    }
    if (cfg_.export_policy != nullptr && !run_policy(*cfg_.export_policy, route, dst)) {
      return xbgp::kFilterReject;
    }
    return xbgp::kFilterAccept;
  }

  /// The representation-independent parts of RFC 4271 §5 export processing.
  void apply_export_transform(Attrs& attrs, PeerState& dst, const LocRibEntry& best) {
    if (dst.session.peer_type() == bgp::PeerType::kEbgp) {
      Core::strip_ibgp_only(attrs);
      Core::prepend_as(attrs, cfg_.asn);
      Core::set_next_hop(attrs, cfg_.address);
    } else {
      // iBGP: ensure LOCAL_PREF (RFC 4271 §5.1.5); nexthop-self for locally
      // originated routes and for peers configured with next-hop-self.
      Core::set_local_pref(attrs, Core::local_pref_or(attrs, 100));
      if (best.from == kLocalRoute || dst.cfg.next_hop_self) {
        Core::set_next_hop(attrs, cfg_.address);
      }
    }
  }

  bool fill_peer_info(PeerState* peer, xbgp::PeerInfo& out) {
    if (peer == nullptr) return false;
    out.router_id = peer->session.peer_id();
    out.asn = peer->session.config().peer_asn;
    out.addr = peer->cfg.address.value();
    out.peer_type = peer->session.peer_type() == bgp::PeerType::kIbgp ? xbgp::kPeerTypeIbgp
                                                                      : xbgp::kPeerTypeEbgp;
    out.rr_client = peer->cfg.rr_client ? 1 : 0;
    out.local_router_id = cfg_.router_id;
    out.local_asn = cfg_.asn;
    out.local_addr = cfg_.address.value();
    return true;
  }

  // ------------------------------------------------------------------------------
  net::EventLoop& loop_;
  Config cfg_;
  xbgp::Vmm vmm_;
  std::vector<std::unique_ptr<PeerState>> peers_;
  std::unordered_map<util::Prefix, AttrsPtr> local_routes_;
  std::unordered_map<util::Prefix, LocRibEntry> loc_rib_;
  std::unordered_map<util::Prefix, util::Ipv4Addr> fib_;
  bool flush_scheduled_ = false;
  RouterStats stats_;
  // Policy-engine scratch space, reused across evaluations.
  std::vector<bgp::Asn> scratch_path_;
  std::vector<std::uint32_t> scratch_comms_;
};

}  // namespace xb::hosts::engine
