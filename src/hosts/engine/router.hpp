// The shared BGP speaker engine, parameterised by a host attribute core.
//
// Router<Core> implements the RFC 4271 machinery every BGP implementation
// shares — sessions, Adj-RIB-In, the decision process, Loc-RIB, export
// processing, Adj-RIB-Out, message packing — while all attribute storage
// and conversion goes through `Core` (FirCore = FRR-like decomposed structs,
// WrenCore = BIRD-like wire-order ea_list). Router also *is* the xBGP host:
// it implements xbgp::HostApi and invokes the VMM at the five insertion
// points of the paper's Fig. 2:
//
//   (1) BGP_RECEIVE_MESSAGE   in handle_update(), before conversion
//   (2) BGP_INBOUND_FILTER    per NLRI, before Adj-RIB-In installation
//   (3) BGP_DECISION          per pairwise best-route comparison
//   (4) BGP_OUTBOUND_FILTER   per route per peer, before Adj-RIB-Out
//   (5) BGP_ENCODE_MESSAGE    per outgoing attribute group
//
// Parallel pipeline (Config::parallelism > 1): the engine stays a
// deterministic single-threaded event loop; UPDATE processing fans out into
// bounded fork-join regions inside one loop event. Adj-RIB-In, Loc-RIB and
// the FIB are partitioned by util::prefix_shard(); each worker owns one
// shard plus one Vmm execution slot, so extension code runs shard-local
// with no contended mutable state. Results are merged back in the original
// arrival order, which makes the RIB contents, the emitted wire messages
// and the Vmm statistics bit-identical at every parallelism level.
// docs/parallel_pipeline.md describes the scheme in detail.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/attr.hpp"
#include "bgp/decision.hpp"
#include "bgp/peer_session.hpp"
#include "bgp/policy.hpp"
#include "hosts/engine/update_builder.hpp"
#include "igp/igp_table.hpp"
#include "obs/provenance.hpp"
#include "obs/telemetry.hpp"
#include "rpki/roa.hpp"
#include "util/ip.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "xbgp/vmm.hpp"

namespace xb::hosts::engine {

using PeerId = std::size_t;
inline constexpr PeerId kLocalRoute = static_cast<PeerId>(-1);

inline constexpr util::Logger kEngineLog{"engine"};

/// Export engine selection. The RibOut engine (default) groups peers with
/// identical export processing — same peer type, reflection role,
/// nexthop-rewrite config and xBGP outbound manifest — runs export
/// processing and UPDATE encoding once per group, and fans the identical
/// bytes to every member. The per-peer engine re-runs the full export path
/// for every peer; it is retained as the oracle of the differential gate
/// (tools/check.sh export), which proves the two produce bit-identical
/// per-peer wire output and Adj-RIB-Out contents.
enum class ExportEngine : std::uint8_t { kPerPeer, kRibOut };

/// The engine's view of the router counters. Since the telemetry spine this
/// is a *snapshot* type: the live counters are per-slot cells on the
/// obs::Registry (see EngineMetrics); Router::stats() folds them into one of
/// these on demand, so existing callers are unchanged.
struct RouterStats {
  std::uint64_t updates_in = 0;
  std::uint64_t updates_out = 0;
  std::uint64_t prefixes_in = 0;
  std::uint64_t prefixes_accepted = 0;
  std::uint64_t prefixes_rejected_in = 0;
  std::uint64_t withdrawals_in = 0;
  std::uint64_t exports_rejected = 0;
  std::uint64_t loop_rejected = 0;
  std::uint64_t malformed_updates = 0;
  std::uint64_t extension_faults = 0;
  std::uint64_t ov_valid = 0;
  std::uint64_t ov_invalid = 0;
  std::uint64_t ov_not_found = 0;
  // RFC 7606 degradation accounting (classified by the codec, applied here).
  std::uint64_t treat_as_withdraw = 0;  // UPDATEs degraded to withdraws
  std::uint64_t attrs_discarded = 0;    // attributes stripped at discard tier
  // Export engine encode work: messages/bytes *built* (once per peer group
  // in RibOut mode, once per peer in per-peer mode) and attribute sections
  // encoded. updates_out still counts per-peer sends, so
  // updates_out / messages_built is the fan-out amplification.
  std::uint64_t messages_built = 0;
  std::uint64_t bytes_built = 0;
  std::uint64_t attr_sections = 0;
  // Extension faults by class (xbgp::FaultClass taxonomy); they sum to
  // extension_faults.
  std::uint64_t faults_verify = 0;
  std::uint64_t faults_budget = 0;
  std::uint64_t faults_memory_bounds = 0;
  std::uint64_t faults_helper_denied = 0;
  std::uint64_t faults_helper_error = 0;
};

/// Registry handles for the engine counters. Registered once at
/// construction; the hot path then touches only per-slot cells through the
/// ids (serial sites use slot 0, pipeline stage A uses the worker's slot,
/// extension faults use the slot recorded in FaultInfo).
struct EngineMetrics {
  using Id = obs::Registry::Id;

  explicit EngineMetrics(obs::Registry& reg)
      : updates_in(reg.counter("xbgp_router_updates_in_total", "UPDATE messages received")),
        updates_out(reg.counter("xbgp_router_updates_out_total", "UPDATE messages sent")),
        prefixes_in(reg.counter("xbgp_router_prefixes_in_total", "NLRI entering the inbound filter")),
        prefixes_accepted(
            reg.counter("xbgp_router_prefixes_accepted_total", "NLRI admitted to Adj-RIB-In")),
        prefixes_rejected_in(
            reg.counter("xbgp_router_prefixes_rejected_in_total", "NLRI rejected by the inbound filter")),
        withdrawals_in(reg.counter("xbgp_router_withdrawals_in_total", "Withdrawn routes received")),
        exports_rejected(
            reg.counter("xbgp_router_exports_rejected_total", "Routes rejected by the outbound filter")),
        loop_rejected(
            reg.counter("xbgp_router_loop_rejected_total", "NLRI dropped by eBGP AS_PATH loop prevention")),
        malformed_updates(
            reg.counter("xbgp_router_malformed_updates_total", "UPDATEs degraded per RFC 7606")),
        treat_as_withdraw(reg.counter("xbgp_router_treat_as_withdraw_total",
                                      "UPDATEs degraded to withdraws (RFC 7606)")),
        attrs_discarded(reg.counter("xbgp_router_attrs_discarded_total",
                                    "Path attributes stripped at the discard tier (RFC 7606)")),
        ov_valid(reg.counter("xbgp_router_ov_total{state=\"valid\"}",
                             "Origin validation outcomes (RFC 6811)")),
        ov_invalid(reg.counter("xbgp_router_ov_total{state=\"invalid\"}",
                               "Origin validation outcomes (RFC 6811)")),
        ov_not_found(reg.counter("xbgp_router_ov_total{state=\"not_found\"}",
                                 "Origin validation outcomes (RFC 6811)")),
        messages_built(reg.counter("xbgp_export_messages_built_total",
                                   "UPDATE messages encoded by the export engine (before fan-out)")),
        bytes_built(reg.counter("xbgp_export_bytes_built_total",
                                "UPDATE bytes encoded by the export engine (before fan-out)")),
        attr_sections(reg.counter("xbgp_export_attr_sections_total",
                                  "Attribute sections encoded (native encode + encode-hook runs)")),
        ingest_ns(reg.histogram("xbgp_router_ingest_ns", "Inbound phase wall time per batch/update")),
        decision_ns(reg.histogram("xbgp_router_decision_ns", "Decision process wall time per prefix")),
        export_ns(reg.histogram("xbgp_router_export_ns", "Export flush wall time per peer")),
        convergence_ns(reg.histogram(
            "xbgp_convergence_ns",
            "Virtual-time ns per change burst until a prefix went stable (flap oracle)")) {
    for (std::uint8_t c = 0; c < xbgp::kFaultClassCount; ++c) {
      fault_class[c] = reg.counter(
          std::string("xbgp_router_extension_faults_total{class=\"") +
              std::string(to_string(static_cast<xbgp::FaultClass>(c))) + "\"}",
          "Extension faults by FaultClass (native fallback taken)");
    }
  }

  Id updates_in, updates_out, prefixes_in, prefixes_accepted, prefixes_rejected_in;
  Id withdrawals_in, exports_rejected, loop_rejected, malformed_updates;
  Id treat_as_withdraw, attrs_discarded;
  Id ov_valid, ov_invalid, ov_not_found;
  Id messages_built, bytes_built, attr_sections;
  Id ingest_ns, decision_ns, export_ns, convergence_ns;
  Id fault_class[xbgp::kFaultClassCount] = {};
};

template <typename Core>
class Router final : public xbgp::HostApi {
 public:
  using CoreType = Core;
  using Attrs = typename Core::Attrs;
  using AttrsPtr = std::shared_ptr<const Attrs>;

  struct Config {
    std::string name = "router";
    bgp::Asn asn = 0;
    bgp::RouterId router_id = 0;
    util::Ipv4Addr address;  // loopback / nexthop-self address
    std::uint32_t cluster_id = 0;  // 0 -> defaults to router_id
    /// Native RFC 4456 route reflection. Off when the RR use case runs as
    /// extension bytecode instead.
    bool native_route_reflector = false;
    /// Native RFC 6811 origin validation: consulted when non-null.
    const rpki::RoaTable* roa_table = nullptr;
    /// Reject Invalid routes (default mirrors the paper's §3.4 setup:
    /// "checks the validity ... but does not discard the invalid ones").
    bool ov_reject_invalid = false;
    const igp::IgpTable* igp = nullptr;
    /// Per-router import/export policy (route-maps) evaluated by the native
    /// default of the inbound/outbound filter operations. Real deployments
    /// always carry such policy (FRR route-maps, BIRD filters); the Fig. 4
    /// benchmarks configure it in both native and extension modes.
    const bgp::policy::RouteMap* import_policy = nullptr;
    const bgp::policy::RouteMap* export_policy = nullptr;
    std::uint16_t hold_time = bgp::kDefaultHoldTime;
    std::uint32_t keepalive_interval = bgp::kDefaultKeepaliveTime;
    /// UPDATE pipeline shards / worker threads. 1 (the default) keeps the
    /// fully serial code path; N > 1 partitions Adj-RIB-In/Loc-RIB/FIB into
    /// N shards and processes batches on N-1 pool workers plus the caller.
    /// Output is bit-identical at every setting.
    std::size_t parallelism = 1;
    /// Export engine: RibOut peer groups with shared encode + fan-out
    /// (default), or the legacy per-peer path (the differential oracle).
    ExportEngine export_engine = ExportEngine::kRibOut;
    /// Named configuration blobs served to extensions via get_xtra.
    std::map<std::string, std::vector<std::uint8_t>, std::less<>> xtra;
    xbgp::Vmm::Options vmm_options;
    /// Telemetry spine configuration. `slots` is forced to `parallelism` by
    /// patch_config(); set `enabled = false` for an uninstrumented baseline
    /// (registry calls become no-ops, sessions fall back to local counters)
    /// or `tracing = true` to also record per-invocation spans and phase
    /// timers.
    obs::Options obs;
  };

  struct PeerConfig {
    std::string name;
    bgp::Asn asn = 0;
    util::Ipv4Addr address;
    bool rr_client = false;
    /// Rewrite the nexthop to our own address when exporting to this peer
    /// (the usual configuration for eBGP-learned routes entering iBGP).
    bool next_hop_self = false;
  };

  Router(net::EventLoop& loop, Config config)
      : loop_(loop),
        cfg_(patch_config(std::move(config))),
        obs_(cfg_.obs),
        m_(obs_.registry()),
        vmm_(*this, cfg_.vmm_options),
        shards_(cfg_.parallelism),
        pool_(cfg_.parallelism - 1),
        scratch_(cfg_.parallelism),
        loc_rib_(cfg_.parallelism) {
    if (cfg_.cluster_id == 0) cfg_.cluster_id = cfg_.router_id;
    fib_.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) fib_.push_back(std::make_unique<FibShard>());
    set_xtra_u32(xbgp::xtra::kRouterId, cfg_.router_id);
    set_xtra_u32(xbgp::xtra::kClusterId, cfg_.cluster_id);
    if (cfg_.obs.enabled) {
      vmm_.set_telemetry(&obs_);
      obs_.registry().add_collector([this](obs::Snapshot& out) {
        const util::ThreadPool::Stats ps = pool_.stats();
        out.gauge("xbgp_pool_workers", "Worker threads in the fork-join pool",
                  pool_.worker_count());
        out.counter("xbgp_pool_regions_total", "Fork-join regions executed", ps.regions);
        out.counter("xbgp_pool_indices_total", "Indices dispatched across all regions",
                    ps.indices);
        out.counter("xbgp_pool_region_ns_total", "Cumulative wall time inside regions",
                    ps.region_ns);
        out.gauge("xbgp_pool_region_ns_max", "Slowest single fork-join region", ps.max_region_ns);
        out.gauge("xbgp_pool_region_indices_peak", "Widest single region (peak batch depth)",
                  ps.max_indices);
        out.gauge("xbgp_export_ribout_groups", "Live RibOut peer groups", ribouts_.size());
        const bgp::InternStats is = interner_.stats();
        out.counter("xbgp_attr_intern_hits_total", "Attribute intern table hits", is.hits);
        out.counter("xbgp_attr_intern_misses_total",
                    "Attribute intern table misses (new canonical objects)", is.misses);
        out.counter("xbgp_attr_intern_evictions_total",
                    "Canonical attribute objects released at refcount zero", is.evictions);
        out.gauge("xbgp_attr_intern_entries", "Live canonical attribute objects", is.entries);
        out.counter("xbgp_eventlog_recorded_total",
                    "Flight-recorder events appended across all slots",
                    obs_.events().recorded_total());
        out.counter("xbgp_eventlog_dropped_total",
                    "Flight-recorder events overwritten before collection",
                    obs_.events().dropped_total());
        const obs::FlapVerdict fv = obs_.flap().verdict(loop_.now());
        out.counter("xbgp_route_flap_changes_total",
                    "Best-path changes seen by the flap detector", fv.total_changes);
        out.gauge("xbgp_route_flap_tracked", "Prefixes tracked by the flap detector",
                  fv.tracked_prefixes);
        out.gauge("xbgp_route_flap_active",
                  "Prefixes that changed within the quiet window", fv.active_prefixes);
        out.gauge("xbgp_route_flap_suppressed",
                  "Prefixes whose decayed penalty exceeds the suppress threshold",
                  fv.suppressed_prefixes);
        out.gauge("xbgp_route_flap_penalty_max",
                  "Largest decayed per-prefix flap penalty", fv.max_penalty);
      });
    }
  }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // --- configuration ----------------------------------------------------------

  PeerId add_peer(net::Duplex::End end, PeerConfig pc) {
    bgp::PeerSession::Config sc;
    sc.local_asn = cfg_.asn;
    sc.peer_asn = pc.asn;
    sc.local_id = cfg_.router_id;
    sc.local_addr = cfg_.address;
    sc.peer_addr = pc.address;
    sc.hold_time = cfg_.hold_time;
    sc.keepalive_interval = cfg_.keepalive_interval;
    auto state = std::make_unique<PeerState>(loop_, end, sc, shards_);
    state->id = peers_.size();
    state->cfg = std::move(pc);
    if (cfg_.obs.enabled) attach_session_telemetry(*state);
    PeerState* raw = state.get();
    state->session.on_established = [this, raw] { on_peer_established(*raw); };
    state->session.on_update = [this, raw](bgp::UpdateMessage&& update,
                                           const bgp::UpdateNotes& notes,
                                           std::span<const std::uint8_t> wire) {
      handle_update(*raw, std::move(update), notes, wire);
    };
    state->session.on_down = [this, raw](const std::string& reason) {
      on_peer_down(*raw, reason);
    };
    state->session.on_route_refresh = [this, raw] {
      // RFC 2918: re-run export processing for everything we advertise to
      // this peer (adj-rib-out rebuild from the current Loc-RIB + policy).
      // In RibOut mode the member leaves its group's synced set (keeping its
      // advertised view) and replays solo, so only *this* peer receives the
      // refresh traffic.
      if (ribout_mode()) unsync_member(*raw, /*clear_view=*/false);
      for (const auto& shard : loc_rib_)
        for (const auto& [prefix, entry] : shard) queue_export(*raw, prefix);
      schedule_flush();
    };
    peers_.push_back(std::move(state));
    if (ribout_mode()) join_ribout(*raw);
    return peers_.size() - 1;
  }

  void start() {
    for (auto& peer : peers_) peer->session.start();
  }

  /// Loads extension bytecode per the manifest (verifies; runs kInit).
  /// RibOut mode: outbound/encode extensions change the export identity of
  /// every peer, so the peer groups are rebuilt around the new key.
  void load_extensions(const xbgp::Manifest& manifest) {
    vmm_.load(manifest);
    manifest_identity_ =
        xbgp::combine_export_identity(manifest_identity_, xbgp::export_identity(manifest));
    if (ribout_mode()) rebuild_ribouts();
  }

  /// Asks a peer to resend its routes (RFC 2918), e.g. after changing
  /// import policy or loading an inbound extension at runtime.
  void request_route_refresh(PeerId id) { peers_.at(id)->session.send_route_refresh(); }

  /// Re-runs export processing for the whole Loc-RIB towards every peer —
  /// what a daemon does when outbound policy or the IGP changes (e.g. after
  /// an SPF run moves nexthop metrics, which Listing-1 style filters read).
  void reevaluate_exports() {
    for (const auto& shard : loc_rib_)
      for (const auto& [prefix, entry] : shard) queue_export_all(prefix);
    schedule_flush();
  }

  void set_xtra(std::string key, std::vector<std::uint8_t> value) {
    cfg_.xtra[std::move(key)] = std::move(value);
  }
  void set_xtra_u32(std::string key, std::uint32_t value) {
    std::vector<std::uint8_t> blob(sizeof(value));
    std::memcpy(blob.data(), &value, sizeof(value));
    set_xtra(std::move(key), std::move(blob));
  }

  /// Originates a local route (ORIGIN IGP, empty AS_PATH, nexthop self).
  void originate(const util::Prefix& prefix) {
    bgp::AttributeSet set;
    set.put(bgp::make_origin(bgp::Origin::kIgp));
    set.put(bgp::AsPath{}.to_attr());
    set.put(bgp::make_next_hop(cfg_.address));
    auto attrs = intern_attrs(std::make_shared<Attrs>(Core::from_wire(set, {})));
    local_routes_[prefix] = LocalRoute{std::move(attrs), next_serial()};
    if (run_decision(prefix, 0)) queue_export_all(prefix);
    schedule_flush();
  }

  // --- observation ---------------------------------------------------------------

  struct LocRibEntry {
    PeerId from = kLocalRoute;
    AttrsPtr attrs;
    std::uint32_t meta = 0;
    /// Identity of the Adj-RIB-In installation (or local origination) that
    /// produced this entry. Interning merges equal-valued attribute storage,
    /// so pointer identity no longer distinguishes "same UPDATE instance";
    /// the serial does, keeping export grouping and decision change
    /// detection bit-identical to the pre-interning engine.
    std::uint64_t serial = 0;
    /// Flight-recorder provenance: which peer/decision-step/extensions
    /// produced this winner. Recorded only while the recorder is on.
    obs::Provenance prov;
  };

  [[nodiscard]] const LocRibEntry* best(const util::Prefix& prefix) const {
    const auto& rib = loc_rib_[shard_of(prefix)];
    auto it = rib.find(prefix);
    return it == rib.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t loc_rib_size() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : loc_rib_) total += shard.size();
    return total;
  }
  /// All Loc-RIB prefixes, sorted (shard-order independent).
  [[nodiscard]] std::vector<util::Prefix> loc_rib_prefixes() const {
    std::vector<util::Prefix> out;
    out.reserve(loc_rib_size());
    for (const auto& shard : loc_rib_)
      for (const auto& [prefix, entry] : shard) out.push_back(prefix);
    std::sort(out.begin(), out.end());
    return out;
  }
  [[nodiscard]] std::size_t adj_rib_in_size(PeerId id) const {
    std::size_t total = 0;
    for (const auto& shard : peers_.at(id)->adj_rib_in) total += shard.size();
    return total;
  }
  [[nodiscard]] std::vector<util::Prefix> adj_rib_in_prefixes(PeerId id) const {
    std::vector<util::Prefix> out;
    for (const auto& shard : peers_.at(id)->adj_rib_in)
      for (const auto& [prefix, route] : shard) out.push_back(prefix);
    std::sort(out.begin(), out.end());
    return out;
  }
  [[nodiscard]] std::size_t adj_rib_out_size(PeerId id) const {
    const PeerState& peer = *peers_.at(id);
    if (!ribout_mode()) return peer.adj_rib_out.size();
    std::size_t n = 0;
    for_each_adj_rib_out(id, [&](const util::Prefix&, const AttrsPtr&) { ++n; });
    return n;
  }
  /// Const iteration over a peer's advertised routes without materialising a
  /// prefix vector (order unspecified); `fn(prefix, attrs)` per route. In
  /// RibOut mode this walks the shared group RIB plus the member's
  /// divergence overrides.
  template <typename F>
  void for_each_adj_rib_out(PeerId id, F&& fn) const {
    const PeerState& peer = *peers_.at(id);
    if (!ribout_mode()) {
      for (const auto& [prefix, attrs] : peer.adj_rib_out) fn(prefix, attrs);
      return;
    }
    if (peer.ribout != nullptr && !peer.fresh_view) {
      for (const auto& [prefix, entry] : peer.ribout->rib) {
        if (entry.excluded == id) continue;
        if (peer.overrides.contains(prefix)) continue;  // reported below
        fn(prefix, entry.attrs);
      }
    }
    for (const auto& [prefix, ov] : peer.overrides) {
      if (ov) fn(prefix, *ov);
    }
  }
  /// Const iteration over a peer's Adj-RIB-In (order unspecified).
  template <typename F>
  void for_each_adj_rib_in(PeerId id, F&& fn) const {
    for (const auto& shard : peers_.at(id)->adj_rib_in) {
      for (const auto& [prefix, route] : shard) fn(prefix, route.attrs);
    }
  }
  [[nodiscard]] std::vector<util::Prefix> adj_rib_out_prefixes(PeerId id) const {
    std::vector<util::Prefix> out;
    for_each_adj_rib_out(id, [&](const util::Prefix& prefix, const AttrsPtr&) {
      out.push_back(prefix);
    });
    std::sort(out.begin(), out.end());
    return out;
  }
  [[nodiscard]] const AttrsPtr* adj_rib_out_lookup(PeerId id, const util::Prefix& p) const {
    const PeerState& peer = *peers_.at(id);
    if (ribout_mode()) return ribout_view_lookup(peer, p);
    auto& rib = peer.adj_rib_out;
    auto it = rib.find(p);
    return it == rib.end() ? nullptr : &it->second;
  }
  /// Live RibOut peer-group count (0 in per-peer mode).
  [[nodiscard]] std::size_t ribout_group_count() const noexcept { return ribouts_.size(); }
  /// Hash-consing statistics of the attribute intern table.
  [[nodiscard]] bgp::InternStats intern_stats() const { return interner_.stats(); }
  [[nodiscard]] std::uint32_t route_meta(PeerId id, const util::Prefix& p) const {
    auto& rib = peers_.at(id)->adj_rib_in[shard_of(p)];
    auto it = rib.find(p);
    return it == rib.end() ? 0 : it->second.meta;
  }
  [[nodiscard]] const AttrsPtr* adj_rib_in_lookup(PeerId id, const util::Prefix& p) const {
    auto& rib = peers_.at(id)->adj_rib_in[shard_of(p)];
    auto it = rib.find(p);
    return it == rib.end() ? nullptr : &it->second.attrs;
  }
  [[nodiscard]] bgp::PeerSession& session(PeerId id) { return peers_.at(id)->session; }
  /// Snapshot of the engine counters, folded across the per-slot registry
  /// cells. Serial-phase only (between fork-join regions).
  [[nodiscard]] RouterStats stats() const noexcept {
    const obs::Registry& reg = obs_.registry();
    RouterStats s;
    s.updates_in = reg.value(m_.updates_in);
    s.updates_out = reg.value(m_.updates_out);
    s.prefixes_in = reg.value(m_.prefixes_in);
    s.prefixes_accepted = reg.value(m_.prefixes_accepted);
    s.prefixes_rejected_in = reg.value(m_.prefixes_rejected_in);
    s.withdrawals_in = reg.value(m_.withdrawals_in);
    s.exports_rejected = reg.value(m_.exports_rejected);
    s.loop_rejected = reg.value(m_.loop_rejected);
    s.malformed_updates = reg.value(m_.malformed_updates);
    s.ov_valid = reg.value(m_.ov_valid);
    s.ov_invalid = reg.value(m_.ov_invalid);
    s.ov_not_found = reg.value(m_.ov_not_found);
    s.treat_as_withdraw = reg.value(m_.treat_as_withdraw);
    s.attrs_discarded = reg.value(m_.attrs_discarded);
    s.messages_built = reg.value(m_.messages_built);
    s.bytes_built = reg.value(m_.bytes_built);
    s.attr_sections = reg.value(m_.attr_sections);
    s.faults_verify = reg.value(m_.fault_class[0]);
    s.faults_budget = reg.value(m_.fault_class[1]);
    s.faults_memory_bounds = reg.value(m_.fault_class[2]);
    s.faults_helper_denied = reg.value(m_.fault_class[3]);
    s.faults_helper_error = reg.value(m_.fault_class[4]);
    s.extension_faults = s.faults_verify + s.faults_budget + s.faults_memory_bounds +
                         s.faults_helper_denied + s.faults_helper_error;
    return s;
  }
  /// The router's telemetry spine (metrics registry + trace ring).
  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return obs_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const noexcept { return obs_; }
  [[nodiscard]] xbgp::Vmm& vmm() noexcept { return vmm_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t parallelism() const noexcept { return shards_; }
  [[nodiscard]] std::optional<util::Ipv4Addr> fib_lookup(const util::Prefix& p) const {
    FibShard& shard = *fib_[shard_of(p)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(p);
    return it == shard.map.end() ? std::nullopt : std::optional(it->second);
  }

  // --- flight recorder ----------------------------------------------------------

  /// True when the flight recorder (event log + provenance + flap oracle)
  /// is stamping events; follows obs.enabled && obs.recorder.
  [[nodiscard]] bool recording() const noexcept { return obs_.recorder(); }

  /// Provenance of the current best path; nullptr when absent or the
  /// recorder was off at install time. Serial-phase only.
  [[nodiscard]] const obs::Provenance* loc_rib_provenance(const util::Prefix& p) const {
    const auto& rib = loc_rib_[shard_of(p)];
    auto it = rib.find(p);
    return it == rib.end() || !it->second.prov.recorded() ? nullptr : &it->second.prov;
  }

  /// Provenance of a peer's Adj-RIB-In entry (nullptr when absent/unrecorded).
  [[nodiscard]] const obs::Provenance* adj_rib_in_provenance(PeerId id,
                                                            const util::Prefix& p) const {
    const auto& rib = peers_.at(id)->adj_rib_in[shard_of(p)];
    auto it = rib.find(p);
    return it == rib.end() || !it->second.prov.recorded() ? nullptr : &it->second.prov;
  }

  /// Provenance of what we advertise to `id` for `p`. In RibOut mode a
  /// member-specific override has no recorded provenance (nullptr).
  [[nodiscard]] const obs::Provenance* adj_rib_out_provenance(PeerId id,
                                                             const util::Prefix& p) const {
    const PeerState& peer = *peers_.at(id);
    if (!ribout_mode()) {
      auto it = peer.adj_rib_out_prov.find(p);
      return it == peer.adj_rib_out_prov.end() || !it->second.recorded() ? nullptr
                                                                         : &it->second;
    }
    if (peer.ribout == nullptr || peer.fresh_view) return nullptr;
    if (peer.overrides.contains(p)) return nullptr;
    auto it = peer.ribout->rib.find(p);
    if (it == peer.ribout->rib.end() || it->second.excluded == id) return nullptr;
    return it->second.prov.recorded() ? &it->second.prov : nullptr;
  }

  /// Resolves a provenance mutator id to its manifest program name.
  [[nodiscard]] std::string_view extension_name(std::uint16_t index) const noexcept {
    return vmm_.program_name(index);
  }

  /// Display name of a peer id (empty when out of range).
  [[nodiscard]] std::string_view peer_display_name(std::uint32_t id) const noexcept {
    return id < peers_.size() ? std::string_view(peers_[id]->cfg.name) : std::string_view{};
  }

  /// Serial-phase: sweeps closed change bursts into the convergence
  /// histogram, then returns the flap/divergence oracle's verdict at the
  /// loop's current virtual time.
  [[nodiscard]] obs::FlapVerdict flap_verdict() {
    const std::uint64_t now = loop_.now();
    obs_.flap().sweep(now, [this](std::uint64_t burst_ns) {
      obs_.registry().observe(m_.convergence_ns, burst_ns, 0);
    });
    return obs_.flap().verdict(now);
  }

  // =============================== HostApi ======================================

  bool peer_info(const xbgp::ExecContext& ctx, xbgp::PeerInfo& out) override {
    return fill_peer_info(static_cast<PeerState*>(ctx.peer), out);
  }
  bool src_peer_info(const xbgp::ExecContext& ctx, xbgp::PeerInfo& out) override {
    return fill_peer_info(static_cast<PeerState*>(ctx.src_peer), out);
  }

  std::optional<bgp::WireAttr> get_attr(const xbgp::ExecContext& ctx,
                                        std::uint8_t code) override {
    if (ctx.incoming != nullptr) {
      const bgp::WireAttr* attr = ctx.incoming->find(code);
      return attr == nullptr ? std::nullopt : std::optional(*attr);
    }
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr) return std::nullopt;
    return Core::get_attr(*route->attrs, code);
  }

  std::optional<bgp::WireAttr> get_attr_alt(const xbgp::ExecContext& ctx,
                                            std::uint8_t code) override {
    auto* route = static_cast<RouteCtx*>(ctx.route_alt);
    if (route == nullptr) return std::nullopt;
    return Core::get_attr(*route->attrs, code);
  }

  bool set_attr(xbgp::ExecContext& ctx, bgp::WireAttr attr) override {
    if (ctx.incoming != nullptr) {
      ctx.ext_added_codes.push_back(attr.code);
      ctx.incoming->put(std::move(attr));
      note_ext_mutation(ctx);
      return true;
    }
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr || !route->mutable_attrs) return false;
    if (!Core::set_attr(*route->mutable_attrs, std::move(attr))) return false;
    note_ext_mutation(ctx);
    return true;
  }

  bool add_attr(xbgp::ExecContext& ctx, bgp::WireAttr attr) override {
    if (ctx.incoming == nullptr) return false;
    ctx.ext_added_codes.push_back(attr.code);
    ctx.incoming->put(std::move(attr));
    note_ext_mutation(ctx);
    return true;
  }

  bool nexthop_info(const xbgp::ExecContext& ctx, xbgp::NexthopInfo& out) override {
    std::optional<util::Ipv4Addr> nh;
    if (ctx.incoming != nullptr) {
      if (const bgp::WireAttr* attr = ctx.incoming->find(bgp::attr_code::kNextHop)) {
        nh = bgp::parse_next_hop(*attr);
      }
    } else if (auto* route = static_cast<RouteCtx*>(ctx.route)) {
      nh = Core::next_hop(*route->attrs);
    }
    if (!nh) return false;
    out.addr = nh->value();
    out.igp_metric = igp_metric(*nh);
    out.reachable = out.igp_metric != igp::kInfMetric ? 1 : 0;
    return true;
  }

  std::span<const std::uint8_t> get_xtra(std::string_view key) override {
    auto it = cfg_.xtra.find(key);
    if (it == cfg_.xtra.end()) return {};
    return it->second;
  }

  bool write_buf(xbgp::ExecContext& ctx, std::span<const std::uint8_t> data) override {
    if (ctx.out == nullptr) return false;
    ctx.out->bytes(data);
    note_ext_mutation(ctx);
    return true;
  }

  bool rib_add_route(const util::Prefix& prefix, util::Ipv4Addr nexthop) override {
    FibShard& shard = *fib_[shard_of(prefix)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[prefix] = nexthop;
    return true;
  }
  std::optional<util::Ipv4Addr> rib_lookup(const util::Prefix& prefix) override {
    return fib_lookup(prefix);
  }

  bool set_route_meta(xbgp::ExecContext& ctx, std::uint32_t value) override {
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr || route->meta == nullptr) return false;
    *route->meta = value;
    return true;
  }
  std::optional<std::uint32_t> get_route_meta(const xbgp::ExecContext& ctx) override {
    auto* route = static_cast<RouteCtx*>(ctx.route);
    if (route == nullptr || route->meta == nullptr) return std::nullopt;
    return *route->meta;
  }

  void notify_extension_fault(const xbgp::FaultInfo& fault) override {
    // May fire from pipeline workers; fault.slot is the execution slot the
    // faulting program ran on, owned by the calling thread, so the per-slot
    // registry cell is written lock-free.
    obs_.registry().add(m_.fault_class[static_cast<std::uint8_t>(fault.cls)], 1, fault.slot);
    kEngineLog.warn(cfg_.name, ": extension '", fault.program, "' faulted at ",
                    to_string(fault.op), " (", to_string(fault.cls), "): ", fault.detail,
                    " (fell back to native)");
  }

  void ebpf_print(std::string_view message) override {
    kEngineLog.info(cfg_.name, " [ebpf] ", message);
  }

 private:
  // ------------------------------------------------------------------------------
  struct RibOut;

  struct AdjInRoute {
    AttrsPtr attrs;
    std::uint32_t meta = 0;
    std::uint64_t serial = 0;  // per-installation identity (see LocRibEntry)
    obs::Provenance prov;      // recorded only while the recorder is on
  };

  struct LocalRoute {
    AttrsPtr attrs;
    std::uint64_t serial = 0;
  };

  struct PeerState {
    PeerId id = 0;
    PeerConfig cfg;
    bgp::PeerSession session;
    /// Partitioned by util::prefix_shard(); worker s owns slot s during a
    /// pipeline region. Size 1 when parallelism == 1.
    std::vector<std::unordered_map<util::Prefix, AdjInRoute>> adj_rib_in;
    std::unordered_map<util::Prefix, AttrsPtr> adj_rib_out;  // per-peer mode only
    /// Per-peer mode, recorder on: provenance of each advertised route.
    std::unordered_map<util::Prefix, obs::Provenance> adj_rib_out_prov;
    std::vector<util::Prefix> pending;           // export work list, ordered
    std::unordered_set<util::Prefix> pending_set;  // dedupe for the work list
    // --- RibOut mode state ---
    RibOut* ribout = nullptr;  // this peer's group (always set in RibOut mode)
    /// Synced: the member's advertised view is the group RIB plus its
    /// overrides, and it is served by group flushes. Unsynced members (new,
    /// refreshing, or down) drain their per-peer `pending` solo.
    bool synced = false;
    /// Never advertised anything: the view is empty regardless of the group
    /// RIB (a freshly added or freshly downed peer).
    bool fresh_view = true;
    /// Where this member's view diverges from the group RIB: attrs = the
    /// member sees this value instead; nullopt = the member does not see the
    /// prefix at all. Kept minimal — entries equal to the base are erased.
    std::unordered_map<util::Prefix, std::optional<AttrsPtr>> overrides;

    PeerState(net::EventLoop& loop, net::Duplex::End end, bgp::PeerSession::Config sc,
              std::size_t shards)
        : session(loop, end, sc), adj_rib_in(shards) {}
  };

  /// A peer group of the export engine: peers whose export processing is
  /// indistinguishable share one Adj-RIB-Out, one export computation and one
  /// encoded byte stream per attribute group (the RibOut model).
  struct RibOutKey {
    bgp::Asn peer_asn = 0;
    bool rr_client = false;
    bool next_hop_self = false;
    /// Outbound identity of the loaded manifests (0 = none attached).
    std::uint64_t manifest_sig = 0;
    /// kLocalRoute normally; the member's own id when the manifest is
    /// peer-scoped (outbound extensions read peer info), forcing one group
    /// per peer.
    PeerId solo = kLocalRoute;
    friend bool operator==(const RibOutKey&, const RibOutKey&) = default;
  };
  struct RibOutKeyHash {
    std::size_t operator()(const RibOutKey& k) const noexcept {
      std::uint64_t h = 1469598103934665603ULL;
      auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
      };
      mix(k.peer_asn);
      mix((k.rr_client ? 1u : 0u) | (k.next_hop_self ? 2u : 0u));
      mix(k.manifest_sig);
      mix(static_cast<std::uint64_t>(k.solo));
      return static_cast<std::size_t>(h);
    }
  };

  struct RibOutEntry {
    AttrsPtr attrs;
    /// Source member the advert is hidden from (split horizon): a member
    /// never sees routes it contributed. kLocalRoute = visible to all.
    PeerId excluded = kLocalRoute;
    /// Provenance of the shared advert (recorder-on runs only).
    obs::Provenance prov;
  };

  struct RibOut {
    RibOutKey key;
    std::vector<PeerId> members;  // every peer keyed here, synced or not
    std::size_t synced_members = 0;
    /// The shared group Adj-RIB-Out.
    std::unordered_map<util::Prefix, RibOutEntry> rib;
    std::vector<util::Prefix> pending;             // group work list, ordered
    std::unordered_set<util::Prefix> pending_set;  // dedupe per flush cycle
    /// Members holding an override per prefix (inverse of
    /// PeerState::overrides, so flushes find divergent members in O(1)).
    std::unordered_map<util::Prefix, std::vector<PeerId>> override_holders;
  };

  /// The host-side route handle behind ExecContext::route (hidden argument).
  struct RouteCtx {
    util::Prefix prefix;
    const Attrs* attrs = nullptr;     // read view
    Attrs* mutable_attrs = nullptr;   // set_attr target (null = read-only ctx)
    std::uint32_t* meta = nullptr;
    PeerState* src = nullptr;         // learned-from peer (null for local)
  };

  struct FibShard {
    std::unordered_map<util::Prefix, util::Ipv4Addr> map;
    /// Guards `map`: decision writes come from the owning shard worker, but
    /// extensions may rib_add_route()/rib_lookup() any prefix from any slot.
    mutable std::mutex mu;
  };

  /// Per-execution-slot scratch for the policy engine.
  struct PolicyScratch {
    std::vector<bgp::Asn> path;
    std::vector<std::uint32_t> comms;
  };

  static Config patch_config(Config c) {
    if (c.parallelism == 0) c.parallelism = 1;
    if (c.vmm_options.execution_contexts < c.parallelism) {
      c.vmm_options.execution_contexts = c.parallelism;
    }
    // One registry/trace cell per execution slot, so pipeline workers count
    // without synchronisation.
    c.obs.slots = c.parallelism;
    return c;
  }

  /// Per-slot counter bump; serial sites pass slot 0, pipeline stage A the
  /// worker's slot. No-op when the registry is disabled.
  void count(obs::Registry::Id id, std::uint64_t n = 1, std::size_t slot = 0) noexcept {
    obs_.registry().add(id, n, slot);
  }

  /// Registers this peer's labelled xbgp_session_* series and hands the ids
  /// to the session (its accessors then read back the registry).
  void attach_session_telemetry(PeerState& state) {
    obs::Registry& reg = obs_.registry();
    const std::string label = "{peer=\"" + state.cfg.name + "\"}";
    bgp::PeerSession::Telemetry st;
    st.registry = &reg;
    st.updates_received =
        reg.counter("xbgp_session_updates_received_total" + label, "UPDATEs received per peer");
    st.updates_sent =
        reg.counter("xbgp_session_updates_sent_total" + label, "UPDATEs sent per peer");
    st.treat_as_withdraw = reg.counter("xbgp_session_treat_as_withdraw_total" + label,
                                       "UPDATEs degraded to withdraws per peer (RFC 7606)");
    st.attrs_discarded = reg.counter("xbgp_session_attrs_discarded_total" + label,
                                     "Attributes stripped at the discard tier per peer");
    st.notifications_sent = reg.counter("xbgp_session_notifications_sent_total" + label,
                                        "NOTIFICATIONs originated per peer");
    state.session.set_telemetry(st);
  }

  [[nodiscard]] std::size_t shard_of(const util::Prefix& p) const noexcept {
    return util::prefix_shard(p, shards_);
  }

  // --- flight recorder (event emission) ------------------------------------------

  /// Appends one event to `slot`'s ring, stamped with the loop's virtual
  /// time; the caller fills the kind-specific fields. Recorder must be on.
  obs::Event* record_event(std::size_t slot, obs::EventKind kind,
                           const util::Prefix& prefix) {
    obs::Event* e = obs_.events().append(slot);
    e->ts_ns = loop_.now();
    e->kind = kind;
    e->prefix_addr = prefix.addr().value();
    e->prefix_len = prefix.length();
    return e;
  }

  /// Adj-RIB-In erase + withdraw event; returns whether the entry existed
  /// (drop-in for the old `rib.erase(prefix) > 0` sites).
  bool adj_in_erase(PeerState& peer, const util::Prefix& prefix, std::size_t shard,
                    std::size_t slot) {
    auto& rib = peer.adj_rib_in[shard];
    auto it = rib.find(prefix);
    if (it == rib.end()) return false;
    if (recording()) {
      obs::Event* e = record_event(slot, obs::EventKind::kRouteWithdrawn, prefix);
      e->peer = peer.id;
      e->old_route_serial = it->second.serial;
    }
    rib.erase(it);
    return true;
  }

  /// Adj-RIB-In install + learned/replaced event. try_emplace keeps this at
  /// one hash lookup whether or not the recorder is on.
  void adj_in_install(PeerState& peer, const util::Prefix& prefix, std::size_t shard,
                      std::size_t slot, AdjInRoute&& route) {
    auto [it, inserted] = peer.adj_rib_in[shard].try_emplace(prefix);
    if (recording()) {
      obs::Event* e = record_event(slot,
                                   inserted ? obs::EventKind::kRouteLearned
                                            : obs::EventKind::kRouteReplaced,
                                   prefix);
      e->peer = peer.id;
      e->route_serial = route.serial;
      if (!inserted) e->old_route_serial = it->second.serial;
    }
    it->second = std::move(route);
  }

  /// Per-peer mode: drops an advertised route together with its provenance.
  void adj_out_erase(PeerState& peer, const util::Prefix& prefix) {
    peer.adj_rib_out.erase(prefix);
    if (!peer.adj_rib_out_prov.empty()) peer.adj_rib_out_prov.erase(prefix);
  }

  /// Attributes a successful host-API mutation to the bound provenance
  /// accumulator and the event log. ctx.prov is only ever non-null while the
  /// recorder is on (the filter/encode call sites gate on recording()).
  void note_ext_mutation(xbgp::ExecContext& ctx) {
    bool fresh = true;  // no accumulator bound: every mutation is an event
    if (ctx.prov != nullptr) {
      fresh = ctx.prov->note_mutation(ctx.current_program,
                                      static_cast<std::uint8_t>(ctx.op));
    }
    // A program writing several attributes in one invocation is one causal
    // mutation: skip the repeat events along with the repeat prov entries.
    if (!fresh || !recording()) return;
    util::Prefix prefix;  // 0.0.0.0/0 for message-level (receive/encode) contexts
    if (auto* route = static_cast<RouteCtx*>(ctx.route)) prefix = route->prefix;
    obs::Event* e = record_event(ctx.exec_slot, obs::EventKind::kExtensionMutation, prefix);
    e->program = ctx.current_program;
    e->op = static_cast<std::uint8_t>(ctx.op);
  }

  // --- peer/session events -------------------------------------------------------

  void on_peer_established(PeerState& peer) {
    kEngineLog.info(cfg_.name, ": session with ", peer.cfg.name, " established");
    if (recording()) {
      obs::Event* e = record_event(0, obs::EventKind::kSessionUp, util::Prefix{});
      e->peer = peer.id;
    }
    // Initial advertisement: the whole Loc-RIB plus local routes.
    for (const auto& shard : loc_rib_)
      for (const auto& [prefix, entry] : shard) queue_export(peer, prefix);
    schedule_flush();
  }

  void on_peer_down(PeerState& peer, const std::string& reason) {
    kEngineLog.warn(cfg_.name, ": session with ", peer.cfg.name, " down: ", reason);
    if (recording()) {
      // The mass invalidation below surfaces as kBestChanged events from
      // run_decision; no per-prefix withdraw events for the cleared shards.
      obs::Event* e = record_event(0, obs::EventKind::kSessionDown, util::Prefix{});
      e->peer = peer.id;
    }
    // Updates queued for the pipeline but not yet processed die with the
    // session, exactly as unparsed socket bytes would.
    if (!ingest_batch_.empty()) {
      std::erase_if(ingest_batch_, [&](const PendingUpdate& pu) { return pu.peer == &peer; });
    }
    // Standard BGP: all routes learned from the peer are invalidated.
    std::vector<util::Prefix> lost;
    for (auto& shard : peer.adj_rib_in) {
      for (const auto& [prefix, route] : shard) lost.push_back(prefix);
      shard.clear();
    }
    peer.adj_rib_out.clear();
    peer.adj_rib_out_prov.clear();
    // RibOut mode: the member leaves the synced set and forgets its view —
    // on re-establishment it replays from scratch, like the cleared
    // adj_rib_out above.
    if (ribout_mode()) unsync_member(peer, /*clear_view=*/true);
    for (const auto& prefix : lost) {
      if (run_decision(prefix, 0)) queue_export_all(prefix);
    }
    schedule_flush();
  }

  // --- inbound pipeline -------------------------------------------------------------

  void handle_update(PeerState& peer, bgp::UpdateMessage&& update,
                     const bgp::UpdateNotes& notes,
                     std::span<const std::uint8_t> wire) {
    count(m_.updates_in);

    // (1) BGP_RECEIVE_MESSAGE: raw wire bytes + the parsed neutral attribute
    // set. Extensions recover custom attributes here (e.g. GeoLoc) before
    // the host conversion would drop them. Always on the main thread, in
    // arrival order, regardless of parallelism.
    xbgp::ExecContext rx;
    rx.op = xbgp::Op::kReceiveMessage;
    rx.peer = &peer;
    rx.src_peer = &peer;
    rx.incoming = &update.attrs;
    rx.add_arg(xbgp::arg::kRawMessage, wire);
    // Provenance accumulator for every route this update installs: seeded
    // with the source peer here so kReceiveMessage mutations attribute to it;
    // the ingest serial is stamped once known (process_nlri / stage A).
    obs::Provenance seed;
    seed.src_peer = peer.id;
    if (recording()) rx.prov = &seed;
    vmm_.execute(xbgp::Op::kReceiveMessage, rx,
                 [] { return xbgp::kOpOk; });

    // RFC 7606 degradation, as classified by the codec. Applied on the main
    // thread before the serial/parallel branch so the error accounting and
    // the resulting RIB mutations are bit-identical at any parallelism.
    // Discard-tier attributes were already stripped from update.attrs;
    // treat-as-withdraw converts the advertised NLRI into withdraws, which
    // both ingest paths then process like any other withdraw.
    count(m_.attrs_discarded, notes.attrs_discarded);
    if (notes.worst == util::ErrorClass::kTreatAsWithdraw) {
      count(m_.malformed_updates);
      count(m_.treat_as_withdraw);
      update.withdrawn.insert(update.withdrawn.end(), update.nlri.begin(),
                              update.nlri.end());
      update.nlri.clear();
      update.attrs = bgp::AttributeSet{};
    }

    if (shards_ > 1) {
      // Parallel pipeline: defer the per-NLRI work into a batch drained by
      // one posted event, so consecutive deliveries coalesce into one
      // fork-join region.
      PendingUpdate pu;
      pu.peer = &peer;
      pu.update = std::move(update);
      pu.keep_codes = std::move(rx.ext_added_codes);
      pu.prov = seed;
      ingest_batch_.push_back(std::move(pu));
      if (!ingest_scheduled_) {
        ingest_scheduled_ = true;
        loop_.post([this] {
          ingest_scheduled_ = false;
          drain_ingest();
        });
      }
      return;
    }

    const bool timing = obs_.tracing();
    const std::uint64_t t0 = timing ? obs::now_ns() : 0;

    for (const auto& prefix : update.withdrawn) {
      count(m_.withdrawals_in);
      if (adj_in_erase(peer, prefix, 0, 0) && run_decision(prefix, 0)) {
        queue_export_all(prefix);
      }
    }

    if (!update.nlri.empty()) {
      process_nlri(peer, update, rx.ext_added_codes, seed);
    }
    if (timing) obs_.registry().observe(m_.ingest_ns, obs::now_ns() - t0, 0);
    schedule_flush();
  }

  void process_nlri(PeerState& peer, const bgp::UpdateMessage& update,
                    const std::vector<std::uint8_t>& keep_codes,
                    const obs::Provenance& seed) {
    const bool ebgp = peer.session.peer_type() == bgp::PeerType::kEbgp;

    // Mandatory attribute checks (RFC 4271 §6.3): treat-as-withdraw.
    if (!update.attrs.has(bgp::attr_code::kOrigin) ||
        !update.attrs.has(bgp::attr_code::kAsPath) ||
        !update.attrs.has(bgp::attr_code::kNextHop)) {
      count(m_.malformed_updates);
      for (const auto& prefix : update.nlri) {
        if (adj_in_erase(peer, prefix, 0, 0) && run_decision(prefix, 0)) {
          queue_export_all(prefix);
        }
      }
      return;
    }

    // The ingest serial is drawn as soon as the update passes the mandatory
    // checks — before conversion and the loop check — so serial values are
    // identical at every parallelism (drain_ingest pre-assigns with the same
    // rule) and provenance records compare bit-for-bit across hosts.
    const std::uint64_t serial = next_serial();

    // Convert the neutral set to this host's representation once per update;
    // all NLRI of the message share it (attribute interning, as real
    // implementations do).
    auto shared = std::make_shared<Attrs>(Core::from_wire(update.attrs, keep_codes));

    // eBGP loop prevention: our own AS in AS_PATH.
    if (ebgp && Core::as_path_contains(*shared, cfg_.asn)) {
      count(m_.loop_rejected, update.nlri.size());
      return;
    }

    obs::Provenance prov = seed;
    prov.ingest_serial = serial;
    std::vector<util::Prefix> installed;
    for (const auto& prefix : update.nlri) {
      count(m_.prefixes_in);
      std::uint32_t meta = 0;
      RouteCtx route{prefix, shared.get(), shared.get(), &meta, &peer};
      const std::uint64_t verdict = run_inbound_filter(peer, route, 0, &prov);

      if (verdict != xbgp::kFilterAccept) {
        count(m_.prefixes_rejected_in);
        if (adj_in_erase(peer, prefix, 0, 0) && run_decision(prefix, 0)) {
          queue_export_all(prefix);
        }
        continue;
      }
      count(m_.prefixes_accepted);
      count_ov(meta, 0);
      adj_in_install(peer, prefix, 0, 0, AdjInRoute{shared, meta, serial, prov});
      installed.push_back(prefix);
      if (run_decision(prefix, 0)) queue_export_all(prefix);
    }
    // Hash-cons the attribute object *after* all mutation sites (inbound
    // filter set-actions ran above); equal-valued objects across updates and
    // peers collapse to one canonical instance. Identity stays with the
    // serial, so swapping the storage pointer is invisible to the engine.
    if (!installed.empty()) {
      AttrsPtr canonical = intern_attrs(shared);
      if (canonical.get() != shared.get()) {
        for (const auto& prefix : installed) {
          peer.adj_rib_in[0][prefix].attrs = canonical;
          auto& rib = loc_rib_[shard_of(prefix)];
          if (auto it = rib.find(prefix); it != rib.end() && it->second.serial == serial) {
            it->second.attrs = canonical;
          }
        }
      }
    }
  }

  /// (2) BGP_INBOUND_FILTER on the given execution slot.
  std::uint64_t run_inbound_filter(PeerState& peer, RouteCtx& route, std::size_t slot,
                                   obs::Provenance* prov = nullptr) {
    xbgp::ExecContext ctx;
    ctx.op = xbgp::Op::kInboundFilter;
    ctx.peer = &peer;
    ctx.src_peer = &peer;
    ctx.route = &route;
    if (recording()) ctx.prov = prov;
    xbgp::PrefixArg parg{route.prefix.addr().value(), route.prefix.length(), {}};
    ctx.add_arg(xbgp::arg::kPrefix,
                std::span(reinterpret_cast<const std::uint8_t*>(&parg), sizeof(parg)));
    return vmm_.execute_on(
        xbgp::Op::kInboundFilter, ctx,
        [&] { return native_import_policy(route, peer, scratch_[slot]); }, slot);
  }

  // --- parallel ingest (parallelism > 1) ---------------------------------------------

  struct PendingUpdate {
    PeerState* peer = nullptr;
    bgp::UpdateMessage update;
    std::vector<std::uint8_t> keep_codes;
    std::size_t seq_base = 0;
    /// Provenance seed (src peer + kReceiveMessage mutations) carried into
    /// stage A; recorder-on runs only.
    obs::Provenance prov;
    /// Ingest serial pre-assigned by drain_ingest on the main thread (same
    /// draw rule as the serial path), so values match parallelism == 1.
    std::uint64_t serial = 0;
  };

  /// One Adj-RIB-In mutation produced by stage A. `seq` reconstructs the
  /// serial processing order (message arrival order, NLRI order within a
  /// message), so per-shard application and the export work list are
  /// identical to the parallelism == 1 run.
  struct IngestItem {
    enum class Kind : std::uint8_t { kInstall, kErase };
    Kind kind = Kind::kErase;
    std::size_t seq = 0;
    util::Prefix prefix;
    PeerState* peer = nullptr;
    AttrsPtr attrs;
    std::uint32_t meta = 0;
    std::uint64_t serial = 0;
    obs::Provenance prov;  // install items, recorder on
  };

  /// Stage A: everything per-update that needs no RIB access — mandatory
  /// attribute checks, host conversion, loop check, the inbound filter per
  /// NLRI. One worker owns a whole update (extensions and policy that
  /// mutate the update's shared attribute object keep serial semantics).
  void ingest_stage_a(PendingUpdate& pu, std::vector<IngestItem>& items, std::size_t slot) {
    PeerState& peer = *pu.peer;
    const bgp::UpdateMessage& update = pu.update;
    std::size_t seq = pu.seq_base;

    for (const auto& prefix : update.withdrawn) {
      count(m_.withdrawals_in, 1, slot);
      items.push_back(IngestItem{IngestItem::Kind::kErase, seq++, prefix, &peer, {}, 0, 0, {}});
    }
    if (update.nlri.empty()) return;

    if (!update.attrs.has(bgp::attr_code::kOrigin) ||
        !update.attrs.has(bgp::attr_code::kAsPath) ||
        !update.attrs.has(bgp::attr_code::kNextHop)) {
      count(m_.malformed_updates, 1, slot);
      for (const auto& prefix : update.nlri) {
        items.push_back(IngestItem{IngestItem::Kind::kErase, seq++, prefix, &peer, {}, 0, 0, {}});
      }
      return;
    }

    auto shared = std::make_shared<Attrs>(Core::from_wire(update.attrs, pu.keep_codes));
    const bool ebgp = peer.session.peer_type() == bgp::PeerType::kEbgp;
    if (ebgp && Core::as_path_contains(*shared, cfg_.asn)) {
      count(m_.loop_rejected, update.nlri.size(), slot);
      return;
    }

    const std::uint64_t serial = pu.serial;  // pre-assigned by drain_ingest
    obs::Provenance prov = pu.prov;
    prov.ingest_serial = serial;
    const std::size_t first_item = items.size();
    bool any_install = false;
    for (const auto& prefix : update.nlri) {
      count(m_.prefixes_in, 1, slot);
      std::uint32_t meta = 0;
      RouteCtx route{prefix, shared.get(), shared.get(), &meta, &peer};
      const std::uint64_t verdict = run_inbound_filter(peer, route, slot, &prov);
      if (verdict != xbgp::kFilterAccept) {
        count(m_.prefixes_rejected_in, 1, slot);
        items.push_back(IngestItem{IngestItem::Kind::kErase, seq++, prefix, &peer, {}, 0, 0, {}});
        continue;
      }
      count(m_.prefixes_accepted, 1, slot);
      count_ov(meta, slot);
      items.push_back(IngestItem{IngestItem::Kind::kInstall, seq++, prefix, &peer, shared,
                                 meta, serial, prov});
      any_install = true;
    }
    // Hash-cons after the update's mutation sites; the interner serialises
    // concurrent workers internally.
    if (any_install) {
      AttrsPtr canonical = intern_attrs(shared);
      if (canonical.get() != shared.get()) {
        for (std::size_t i = first_item; i < items.size(); ++i) {
          if (items[i].kind == IngestItem::Kind::kInstall) items[i].attrs = canonical;
        }
      }
    }
  }

  /// Drains the batched updates through the two pipeline stages:
  ///   A) per-update work, workers striding over whole updates;
  ///   B) per-shard Adj-RIB-In application + decision, worker s == shard s;
  /// then merges the per-shard changed lists back into serial order.
  void drain_ingest() {
    if (ingest_batch_.empty()) return;
    std::vector<PendingUpdate> batch;
    batch.swap(ingest_batch_);

    std::size_t seq = 0;
    for (auto& pu : batch) {
      pu.seq_base = seq;
      seq += pu.update.withdrawn.size() + pu.update.nlri.size();
      // Pre-draw the ingest serial on the main thread, in arrival order,
      // under the same rule the serial path uses (mandatory attrs present):
      // serial VALUES are then identical at every parallelism setting.
      if (!pu.update.nlri.empty() && pu.update.attrs.has(bgp::attr_code::kOrigin) &&
          pu.update.attrs.has(bgp::attr_code::kAsPath) &&
          pu.update.attrs.has(bgp::attr_code::kNextHop)) {
        pu.serial = next_serial();
      }
    }

    const bool timing = obs_.tracing();
    std::uint64_t t0 = timing ? obs::now_ns() : 0;

    std::vector<std::vector<IngestItem>> worker_items(shards_);
    pool_.run_indexed(shards_, [&](std::size_t w) {
      for (std::size_t u = w; u < batch.size(); u += shards_) {
        ingest_stage_a(batch[u], worker_items[w], w);
      }
    });
    if (timing) {
      const std::uint64_t t1 = obs::now_ns();
      obs_.registry().observe(m_.ingest_ns, t1 - t0, 0);
      t0 = t1;
    }

    std::vector<std::vector<const IngestItem*>> shard_items(shards_);
    for (const auto& items : worker_items) {
      for (const auto& item : items) shard_items[shard_of(item.prefix)].push_back(&item);
    }
    for (auto& items : shard_items) {
      std::sort(items.begin(), items.end(),
                [](const IngestItem* a, const IngestItem* b) { return a->seq < b->seq; });
    }

    std::vector<std::vector<std::pair<std::size_t, util::Prefix>>> changed(shards_);
    pool_.run_indexed(shards_, [&](std::size_t s) {
      for (const IngestItem* item : shard_items[s]) {
        bool touched = true;
        if (item->kind == IngestItem::Kind::kErase) {
          touched = adj_in_erase(*item->peer, item->prefix, s, s);
        } else {
          adj_in_install(*item->peer, item->prefix, s, s,
                         AdjInRoute{item->attrs, item->meta, item->serial, item->prov});
        }
        if (touched && run_decision(item->prefix, s)) {
          changed[s].emplace_back(item->seq, item->prefix);
        }
      }
    });
    if (timing) obs_.registry().observe(m_.decision_ns, obs::now_ns() - t0, 0);

    std::vector<std::pair<std::size_t, util::Prefix>> ordered;
    for (const auto& list : changed) ordered.insert(ordered.end(), list.begin(), list.end());
    std::sort(ordered.begin(), ordered.end());
    for (const auto& [s, prefix] : ordered) queue_export_all(prefix);
    schedule_flush();
  }

  /// The native (default) import policy: RFC 4456 loop prevention when this
  /// router is a native route reflector, RFC 6811 origin validation when a
  /// ROA table is configured.
  std::uint64_t native_import_policy(RouteCtx& route, PeerState& peer,
                                     PolicyScratch& scratch) {
    if (cfg_.native_route_reflector &&
        peer.session.peer_type() == bgp::PeerType::kIbgp) {
      if (auto originator = Core::originator_id(*route.attrs);
          originator && *originator == cfg_.router_id) {
        return xbgp::kFilterReject;
      }
      if (Core::cluster_list_contains(*route.attrs, cfg_.cluster_id)) {
        return xbgp::kFilterReject;
      }
    }
    if (cfg_.roa_table != nullptr) {
      const auto origin = Core::origin_asn(*route.attrs);
      const rpki::Validity validity =
          origin ? cfg_.roa_table->validate(route.prefix, *origin)
                 : rpki::Validity::kNotFound;
      *route.meta = static_cast<std::uint32_t>(validity);
      if (cfg_.ov_reject_invalid && validity == rpki::Validity::kInvalid) {
        return xbgp::kFilterReject;
      }
    }
    if (cfg_.import_policy != nullptr &&
        !run_policy(*cfg_.import_policy, route, peer, scratch)) {
      return xbgp::kFilterReject;
    }
    return xbgp::kFilterAccept;
  }

  /// Evaluates a route-map against the route. Set actions apply to the
  /// route's mutable attributes (when the context allows mutation) and the
  /// metadata word (e.g. `match rpki` records the validation state).
  bool run_policy(const bgp::policy::RouteMap& map, RouteCtx& route, PeerState& peer,
                  PolicyScratch& scratch) {
    bgp::policy::RouteFacts facts;
    facts.prefix = route.prefix;
    const Attrs& attrs = *route.attrs;
    facts.origin_asn = Core::origin_asn(attrs);
    Core::flatten_as_path(attrs, scratch.path);
    facts.as_path = scratch.path;
    facts.next_hop = Core::next_hop(attrs);
    if (facts.next_hop) facts.igp_metric_to_nexthop = igp_metric(*facts.next_hop);
    facts.local_pref = Core::local_pref_or(attrs, 100);
    facts.med = Core::med(attrs);
    Core::communities_of(attrs, scratch.comms);
    facts.communities = scratch.comms;
    facts.peer_type = peer.session.peer_type();
    facts.peer_asn = peer.session.config().peer_asn;

    const auto verdict = map.evaluate(facts);
    if (facts.new_meta && route.meta != nullptr) *route.meta = *facts.new_meta;
    if (verdict.permitted && route.mutable_attrs != nullptr) {
      if (facts.new_local_pref) Core::set_local_pref(*route.mutable_attrs, *facts.new_local_pref);
    }
    return verdict.permitted;
  }

  void count_ov(std::uint32_t meta, std::size_t slot) noexcept {
    switch (meta) {
      case xbgp::kMetaOvValid: count(m_.ov_valid, 1, slot); break;
      case xbgp::kMetaOvInvalid: count(m_.ov_invalid, 1, slot); break;
      default: count(m_.ov_not_found, 1, slot); break;
    }
  }

  // --- decision process ----------------------------------------------------------

  /// Recomputes the best route for `prefix` (shard-local: touches only the
  /// prefix's Adj-RIB-In/Loc-RIB/FIB shard, so distinct-shard calls may run
  /// concurrently). Returns true when the Loc-RIB changed; the caller is
  /// responsible for queueing export work.
  bool run_decision(const util::Prefix& prefix, std::size_t slot) {
    const std::size_t shard = shard_of(prefix);
    // Gather candidates: local routes win outright (administrative weight),
    // otherwise the best Adj-RIB-In entry across peers.
    LocRibEntry winner;
    bool have = false;
    std::size_t candidates = 0;
    std::uint8_t step = obs::kProvStepUnset;
    if (auto it = local_routes_.find(prefix); it != local_routes_.end()) {
      winner = LocRibEntry{kLocalRoute, it->second.attrs, 0, it->second.serial,
                           obs::Provenance{it->second.serial, obs::kProvNoPeer,
                                           obs::kProvStepLocal}};
      have = true;
    } else {
      for (auto& peer : peers_) {
        auto it = peer->adj_rib_in[shard].find(prefix);
        if (it == peer->adj_rib_in[shard].end()) continue;
        ++candidates;
        LocRibEntry candidate{peer->id, it->second.attrs, it->second.meta,
                              it->second.serial, it->second.prov};
        if (!have) {
          winner = std::move(candidate);
          have = true;
          continue;
        }
        if (candidate_better(prefix, candidate, winner, slot, step)) {
          winner = std::move(candidate);
        }
      }
      // The step that decided the *last* pairwise comparison (deterministic:
      // peers_ iteration order is fixed); "only-route" when unopposed.
      if (have) {
        winner.prov.decision_step =
            candidates <= 1 ? obs::kProvStepOnlyRoute : step;
      }
    }

    auto& rib = loc_rib_[shard];
    auto cur = rib.find(prefix);
    if (!have) {
      if (cur != rib.end()) {
        if (recording()) {
          obs::Event* e = record_event(slot, obs::EventKind::kBestChanged, prefix);
          e->old_peer = cur->second.from == kLocalRoute
                            ? obs::kEventNoPeer
                            : static_cast<std::uint32_t>(cur->second.from);
          e->old_route_serial = cur->second.serial;
          obs_.flap().on_change(shard, obs::flap_key(prefix.addr().value(), prefix.length()),
                                loop_.now());
        }
        rib.erase(cur);
        fib_erase(prefix);
        return true;
      }
      return false;
    }
    const bool changed = cur == rib.end() || cur->second.serial != winner.serial ||
                         cur->second.from != winner.from;
    if (changed) {
      if (recording()) {
        obs::Event* e = record_event(slot, obs::EventKind::kBestChanged, prefix);
        if (cur != rib.end()) {
          e->old_peer = cur->second.from == kLocalRoute
                            ? obs::kEventNoPeer
                            : static_cast<std::uint32_t>(cur->second.from);
          e->old_route_serial = cur->second.serial;
        }
        e->peer = winner.from == kLocalRoute ? obs::kEventNoPeer
                                             : static_cast<std::uint32_t>(winner.from);
        e->route_serial = winner.serial;
        obs_.flap().on_change(shard, obs::flap_key(prefix.addr().value(), prefix.length()),
                              loop_.now());
      }
      if (auto nh = Core::next_hop(*winner.attrs)) fib_set(prefix, *nh);
      rib[prefix] = winner;
    }
    return changed;
  }

  /// Pairwise comparison, overridable at the BGP_DECISION insertion point.
  /// `step` reports what decided the comparison (a bgp::DecisionStep value,
  /// or obs::kProvStepExtension when bytecode produced the verdict).
  bool candidate_better(const util::Prefix& prefix, const LocRibEntry& cand,
                        const LocRibEntry& best, std::size_t slot, std::uint8_t& step) {
    auto native = [&]() -> std::uint64_t {
      const bgp::Comparison cmp = bgp::compare_routes(make_view(cand), make_view(best));
      step = static_cast<std::uint8_t>(cmp.decided_by);
      return cmp.first_is_better ? xbgp::kDecisionTakeNew : xbgp::kDecisionKeepOld;
    };
    if (!vmm_.any_attached(xbgp::Op::kDecision)) return native() == xbgp::kDecisionTakeNew;
    step = obs::kProvStepExtension;  // native fallback overwrites inside the lambda

    std::uint32_t cand_meta = cand.meta;
    std::uint32_t best_meta = best.meta;
    RouteCtx cand_route{prefix, cand.attrs.get(), nullptr, &cand_meta, peer_of(cand.from)};
    RouteCtx best_route{prefix, best.attrs.get(), nullptr, &best_meta, peer_of(best.from)};
    xbgp::ExecContext ctx;
    ctx.op = xbgp::Op::kDecision;
    ctx.route = &cand_route;       // candidate is the primary route
    ctx.route_alt = &best_route;   // reachable via the get_attr_alt helper
    ctx.peer = peer_of(cand.from);
    ctx.src_peer = peer_of(best.from);
    xbgp::PrefixArg parg{prefix.addr().value(), prefix.length(), {}};
    ctx.add_arg(xbgp::arg::kPrefix,
                std::span(reinterpret_cast<const std::uint8_t*>(&parg), sizeof(parg)));
    return vmm_.execute_on(xbgp::Op::kDecision, ctx, native, slot) == xbgp::kDecisionTakeNew;
  }

  bgp::RouteView make_view(const LocRibEntry& entry) const {
    bgp::RouteView view;
    const Attrs& attrs = *entry.attrs;
    view.local_pref = Core::local_pref_or(attrs, 100);
    view.as_path_length = Core::as_path_length(attrs);
    view.origin = Core::origin(attrs);
    view.med = Core::med(attrs);
    view.neighbor_as = Core::first_asn(attrs);
    view.cluster_list_length = Core::cluster_list_length(attrs);
    if (entry.from == kLocalRoute) {
      view.peer_type = bgp::PeerType::kIbgp;
      view.local_pref = 1u << 30;  // administrative weight: local wins
      view.peer_router_id = cfg_.router_id;
      view.peer_addr = cfg_.address;
      view.igp_metric_to_nexthop = 0;
      return view;
    }
    const PeerState& peer = *peers_[entry.from];
    view.peer_type = peer.session.peer_type();
    // RFC 4456 §9: use ORIGINATOR_ID in place of the router id if present.
    view.peer_router_id = Core::originator_id(attrs).value_or(peer.session.peer_id());
    view.peer_addr = peer.cfg.address;
    if (auto nh = Core::next_hop(attrs)) {
      view.igp_metric_to_nexthop = igp_metric(*nh);
    }
    return view;
  }

  PeerState* peer_of(PeerId id) {
    return id == kLocalRoute ? nullptr : peers_[id].get();
  }

  std::uint32_t igp_metric(util::Ipv4Addr nexthop) const {
    if (cfg_.igp == nullptr) return 0;
    // Unknown nexthops are treated as directly connected (metric 0), which
    // is how the testbed models single-hop eBGP peers outside the IGP.
    return cfg_.igp->metric_to(nexthop).value_or(0);
  }

  void fib_set(const util::Prefix& prefix, util::Ipv4Addr nh) {
    FibShard& shard = *fib_[shard_of(prefix)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[prefix] = nh;
  }
  void fib_erase(const util::Prefix& prefix) {
    FibShard& shard = *fib_[shard_of(prefix)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(prefix);
  }

  // --- export pipeline --------------------------------------------------------------

  void queue_export(PeerState& peer, const util::Prefix& prefix) {
    if (!peer.pending_set.insert(prefix).second) return;
    peer.pending.push_back(prefix);
  }

  void queue_export_all(const util::Prefix& prefix) {
    if (ribout_mode()) {
      // One group work-list entry serves every synced member; unsynced
      // members accumulate the prefix on their solo list instead.
      for (auto& rb : ribouts_) {
        if (rb->synced_members == 0) continue;
        if (rb->pending_set.insert(prefix).second) rb->pending.push_back(prefix);
      }
      for (auto& peer : peers_) {
        if (!peer->synced) queue_export(*peer, prefix);
      }
      return;
    }
    for (auto& peer : peers_) queue_export(*peer, prefix);
  }

  void schedule_flush() {
    if (flush_scheduled_) return;
    flush_scheduled_ = true;
    loop_.post([this] {
      flush_scheduled_ = false;
      if (ribout_mode()) {
        flush_ribout_event();
      } else {
        for (auto& peer : peers_) flush_peer(*peer);
      }
    });
  }

  void flush_peer(PeerState& peer) {
    if (peer.pending.empty()) return;
    if (!peer.session.established()) return;  // re-announced on establishment
    const bool timing = obs_.tracing();
    const std::uint64_t t0 = timing ? obs::now_ns() : 0;
    if (shards_ > 1) {
      flush_peer_parallel(peer);
    } else {
      flush_peer_serial(peer);
    }
    if (timing) obs_.registry().observe(m_.export_ns, obs::now_ns() - t0, 0);
  }

  void flush_peer_serial(PeerState& peer) {

    UpdateBuilder builder;
    // Group state: routes sharing the source update instance (serial) and
    // producing equal export attrs share one encoded attribute section.
    std::uint64_t group_serial = 0;  // serials start at 1: 0 = no open group
    PeerId group_from = kLocalRoute;
    bool group_accepted = false;
    AttrsPtr group_attrs;
    obs::Provenance group_prov;

    for (const util::Prefix& prefix : peer.pending) {
      const LocRibEntry* best = this->best(prefix);
      const bool had = peer.adj_rib_out.contains(prefix);

      // No best route (or split horizon): withdraw if previously advertised.
      if (best == nullptr || best->from == peer.id) {
        if (had) {
          adj_out_erase(peer, prefix);
          builder.withdraw_prefix(prefix);
        }
        continue;
      }

      if (group_serial != best->serial || group_from != best->from) {
        // New source group: run export processing once for the group.
        group_serial = best->serial;
        group_from = best->from;
        group_attrs = nullptr;
        group_prov = obs::Provenance{};
        group_accepted = export_group(peer, prefix, *best, group_attrs, group_prov, builder);
      } else if (group_accepted) {
        // Same group: per-route hook invocation with the shared work copy.
        std::uint32_t meta = best->meta;
        RouteCtx route{prefix, group_attrs.get(), nullptr, &meta, peer_of(best->from)};
        if (!run_outbound_filter(peer, route, *best, 0)) {
          if (had) {
            adj_out_erase(peer, prefix);
            builder.withdraw_prefix(prefix);
          }
          continue;
        }
      }

      if (!group_accepted) {
        count(m_.exports_rejected);
        if (had) {
          adj_out_erase(peer, prefix);
          builder.withdraw_prefix(prefix);
        }
        continue;
      }
      peer.adj_rib_out[prefix] = group_attrs;
      if (recording()) peer.adj_rib_out_prov[prefix] = group_prov;
      builder.add_prefix(prefix);
    }

    send_built(peer, builder);
    peer.pending.clear();
    peer.pending_set.clear();
  }

  void send_built(PeerState& peer, UpdateBuilder& builder) {
    for (auto& wire : builder.finish()) {
      count(m_.messages_built);
      count(m_.bytes_built, wire.size());
      peer.session.send_bytes(wire);
      peer.session.count_update_sent();
      count(m_.updates_out);
    }
  }

  /// Export processing for the first route of a group: copy the source
  /// attributes, run the outbound filter (4), apply the standard export
  /// transform, encode natively and run the encode hook (5).
  bool export_group(PeerState& peer, const util::Prefix& prefix, const LocRibEntry& best,
                    AttrsPtr& out_attrs, obs::Provenance& out_prov, UpdateBuilder& builder) {
    auto work = std::make_shared<Attrs>(*best.attrs);  // per-group working copy
    std::uint32_t meta = best.meta;
    RouteCtx route{prefix, work.get(), work.get(), &meta, peer_of(best.from)};

    out_prov = best.prov;  // provenance travels Loc-RIB -> Adj-RIB-Out
    if (!run_outbound_filter(peer, route, best, 0, &out_prov)) {
      count(m_.exports_rejected);
      return false;
    }

    apply_export_transform(*work, peer, best);

    util::ByteWriter attr_bytes;
    encode_group(peer, prefix, best, *work, meta, 0, attr_bytes, &out_prov);

    builder.begin_group(attr_bytes.view());
    out_attrs = intern_attrs(std::move(work));
    return true;
  }

  /// Encode: native attributes, then the BGP_ENCODE_MESSAGE chain for
  /// extension-managed attributes (write_buf appends to this writer).
  void encode_group(PeerState& peer, const util::Prefix& prefix, const LocRibEntry& best,
                    Attrs& work, std::uint32_t meta, std::size_t slot,
                    util::ByteWriter& attr_bytes, obs::Provenance* prov = nullptr) {
    count(m_.attr_sections, 1, slot);
    Core::encode_native(work, attr_bytes);
    xbgp::ExecContext ctx;
    ctx.op = xbgp::Op::kEncodeMessage;
    ctx.peer = &peer;
    ctx.src_peer = peer_of(best.from);
    if (recording()) ctx.prov = prov;
    RouteCtx enc_route{prefix, &work, nullptr, &meta, peer_of(best.from)};
    ctx.route = &enc_route;
    ctx.out = &attr_bytes;
    vmm_.execute_on(xbgp::Op::kEncodeMessage, ctx, [] { return xbgp::kOpOk; }, slot);
  }

  // --- parallel export (parallelism > 1) ---------------------------------------------

  /// One attribute group of a flush, in Loc-RIB pending order: the VM-heavy
  /// work (outbound filters, export transform, encoding) is computed by a
  /// worker; the results are applied by the main thread in order.
  struct ExportGroupWork {
    LocRibEntry best;
    util::Prefix first_prefix;
    std::vector<util::Prefix> rest;          // subsequent routes of the group
    // Worker results:
    bool accepted = false;
    AttrsPtr attrs;                          // post-transform attrs, interned
    std::vector<std::uint8_t> encoded;       // attribute section bytes
    std::vector<char> rest_verdicts;         // per-subsequent-route filter verdicts
    obs::Provenance prov;                    // provenance of the group's attrs
  };

  void compute_export_group(PeerState& peer, ExportGroupWork& gw, std::size_t slot) {
    auto work = std::make_shared<Attrs>(*gw.best.attrs);
    std::uint32_t meta = gw.best.meta;
    RouteCtx route{gw.first_prefix, work.get(), work.get(), &meta, peer_of(gw.best.from)};
    gw.prov = gw.best.prov;
    if (!run_outbound_filter(peer, route, gw.best, slot, &gw.prov)) {
      return;  // accepted stays false
    }

    apply_export_transform(*work, peer, gw.best);
    util::ByteWriter attr_bytes;
    encode_group(peer, gw.first_prefix, gw.best, *work, meta, slot, attr_bytes, &gw.prov);
    gw.encoded.assign(attr_bytes.view().begin(), attr_bytes.view().end());
    gw.attrs = intern_attrs(std::move(work));
    gw.accepted = true;

    gw.rest_verdicts.assign(gw.rest.size(), 0);
    for (std::size_t i = 0; i < gw.rest.size(); ++i) {
      std::uint32_t m = gw.best.meta;
      RouteCtx r{gw.rest[i], gw.attrs.get(), nullptr, &m, peer_of(gw.best.from)};
      gw.rest_verdicts[i] = run_outbound_filter(peer, r, gw.best, slot) ? 1 : 0;
    }
  }

  void flush_peer_parallel(PeerState& peer) {
    enum : std::uint8_t { kActWithdraw, kActFirst, kActMember };
    struct Step {
      std::uint8_t act = kActWithdraw;
      util::Prefix prefix;
      std::size_t group = 0;
      bool had = false;
      std::size_t member = 0;
    };

    // Plan the flush on the main thread, in pending order, replicating the
    // serial group state machine exactly (withdraws do not break a group).
    std::vector<Step> steps;
    std::vector<ExportGroupWork> groups;
    std::uint64_t group_serial = 0;
    PeerId group_from = kLocalRoute;
    for (const util::Prefix& prefix : peer.pending) {
      const LocRibEntry* best = this->best(prefix);
      const bool had = peer.adj_rib_out.contains(prefix);
      if (best == nullptr || best->from == peer.id) {
        if (had) steps.push_back(Step{kActWithdraw, prefix, 0, true, 0});
        continue;
      }
      if (group_serial != best->serial || group_from != best->from) {
        group_serial = best->serial;
        group_from = best->from;
        groups.emplace_back();
        groups.back().best = *best;
        groups.back().first_prefix = prefix;
        steps.push_back(Step{kActFirst, prefix, groups.size() - 1, had, 0});
      } else {
        auto& gw = groups.back();
        gw.rest.push_back(prefix);
        steps.push_back(Step{kActMember, prefix, groups.size() - 1, had, gw.rest.size() - 1});
      }
    }

    if (!groups.empty()) {
      pool_.run_indexed(shards_, [&](std::size_t w) {
        for (std::size_t g = w; g < groups.size(); g += shards_) {
          compute_export_group(peer, groups[g], w);
        }
      });
    }

    // Apply in pending order: Adj-RIB-Out updates, message packing and the
    // exports_rejected accounting match the serial path step for step.
    UpdateBuilder builder;
    for (const Step& step : steps) {
      if (step.act == kActWithdraw) {
        adj_out_erase(peer, step.prefix);
        builder.withdraw_prefix(step.prefix);
        continue;
      }
      ExportGroupWork& gw = groups[step.group];
      if (!gw.accepted) {
        // The serial path counts the group-opening route twice (once inside
        // export_group, once at the call site); replicated for stat parity.
        count(m_.exports_rejected, step.act == kActFirst ? 2 : 1);
        if (step.had) {
          adj_out_erase(peer, step.prefix);
          builder.withdraw_prefix(step.prefix);
        }
        continue;
      }
      if (step.act == kActMember && gw.rest_verdicts[step.member] == 0) {
        if (step.had) {
          adj_out_erase(peer, step.prefix);
          builder.withdraw_prefix(step.prefix);
        }
        continue;
      }
      if (step.act == kActFirst) builder.begin_group(gw.encoded);
      peer.adj_rib_out[step.prefix] = gw.attrs;
      if (recording()) peer.adj_rib_out_prov[step.prefix] = gw.prov;
      builder.add_prefix(step.prefix);
    }

    send_built(peer, builder);
    peer.pending.clear();
    peer.pending_set.clear();
  }

  // --- RibOut peer-group export engine -----------------------------------------------
  //
  // Peers whose export processing is indistinguishable — same RibOutKey —
  // share one group Adj-RIB-Out. Synced members are served by group flushes
  // that run the per-peer flush state machine once per *message-stream
  // class* (the bulk of the group plus one class per member that can
  // diverge this cycle: the best route's source, excluded members, override
  // holders) and fan each built message to every member of the class.
  // Unsynced members (new, refreshing, re-establishing) drain their solo
  // work lists through the same machine and then join the synced set; any
  // divergence from the shared rib is kept as a per-member override. All
  // RibOut export work runs on the main thread at slot 0, so wire output is
  // parallelism-invariant by construction; the per-peer engine above is the
  // differential oracle proving bit-identical output.

  [[nodiscard]] bool ribout_mode() const noexcept {
    return cfg_.export_engine == ExportEngine::kRibOut;
  }

  /// Unique identity for one from_wire() materialisation (or origination).
  /// Serials start at 1; 0 means "none".
  std::uint64_t next_serial() noexcept {
    return attr_serial_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Hash-conses an attribute object: equal canonical form (host wire bytes
  /// plus extension-managed code list) yields the same canonical object, so
  /// equality downstream is pointer comparison.
  AttrsPtr intern_attrs(std::shared_ptr<const Attrs> attrs) {
    std::string key = Core::canonical_key(*attrs);
    return interner_.intern(std::move(attrs), std::move(key));
  }

  void join_ribout(PeerState& peer) {
    RibOutKey key;
    key.peer_asn = peer.session.config().peer_asn;
    key.rr_client = peer.cfg.rr_client;
    key.next_hop_self = peer.cfg.next_hop_self;
    key.manifest_sig = manifest_identity_.signature;
    if (manifest_identity_.peer_scoped) key.solo = peer.id;
    auto it = ribout_index_.find(key);
    if (it == ribout_index_.end()) {
      auto rb = std::make_unique<RibOut>();
      rb->key = key;
      it = ribout_index_.emplace(key, rb.get()).first;
      ribouts_.push_back(std::move(rb));
    }
    it->second->members.push_back(peer.id);
    peer.ribout = it->second;
  }

  /// Re-forms the peer groups after the export identity changed (extension
  /// load): every member's advertised view is materialised, unflushed group
  /// work moves to the members' solo lists, and the new groups are seeded
  /// from the first viewed member (other views become overrides). Members
  /// re-sync at the next flush event.
  void rebuild_ribouts() {
    struct SavedView {
      bool present = false;
      std::unordered_map<util::Prefix, AttrsPtr> view;
    };
    std::vector<SavedView> saved(peers_.size());
    for (auto& peer : peers_) {
      if (peer->ribout == nullptr) continue;
      if (peer->synced || !peer->fresh_view) {
        SavedView& sv = saved[peer->id];
        sv.present = true;
        for_each_adj_rib_out(peer->id, [&](const util::Prefix& prefix, const AttrsPtr& attrs) {
          sv.view.emplace(prefix, attrs);
        });
      }
      if (peer->synced) {
        for (const util::Prefix& prefix : peer->ribout->pending) queue_export(*peer, prefix);
      }
      peer->synced = false;
      peer->overrides.clear();
      peer->ribout = nullptr;
    }
    ribouts_.clear();
    ribout_index_.clear();
    std::unordered_set<RibOut*> seeded;
    for (auto& peer : peers_) {
      join_ribout(*peer);
      SavedView& sv = saved[peer->id];
      if (!sv.present) {
        peer->fresh_view = true;
        continue;
      }
      peer->fresh_view = false;
      RibOut& rb = *peer->ribout;
      if (seeded.insert(&rb).second) {
        // First viewed member: its view becomes the shared rib verbatim
        // (split-horizon exclusions were already applied in the view; other
        // members' own-source gaps surface as overrides below).
        for (const auto& [prefix, attrs] : sv.view) {
          rb.rib.emplace(prefix, RibOutEntry{attrs, kLocalRoute, {}});
        }
        continue;
      }
      for (const auto& [prefix, entry] : rb.rib) {
        auto it = sv.view.find(prefix);
        if (it == sv.view.end()) {
          set_override(*peer, prefix, std::nullopt);
        } else if (it->second != entry.attrs) {
          set_override(*peer, prefix, std::optional<AttrsPtr>(it->second));
        }
      }
      for (const auto& [prefix, attrs] : sv.view) {
        if (!rb.rib.contains(prefix)) {
          set_override(*peer, prefix, std::optional<AttrsPtr>(attrs));
        }
      }
    }
    schedule_flush();  // members re-sync via their solo drains
  }

  /// A member's advertised route for `prefix`: its override if present,
  /// otherwise the shared rib entry unless hidden from this member.
  const AttrsPtr* ribout_view_lookup(const PeerState& peer, const util::Prefix& prefix) const {
    if (auto it = peer.overrides.find(prefix); it != peer.overrides.end()) {
      return it->second ? &*it->second : nullptr;
    }
    if (peer.fresh_view || peer.ribout == nullptr) return nullptr;
    auto it = peer.ribout->rib.find(prefix);
    if (it == peer.ribout->rib.end() || it->second.excluded == peer.id) return nullptr;
    return &it->second.attrs;
  }

  void set_override(PeerState& peer, const util::Prefix& prefix, std::optional<AttrsPtr> value) {
    auto [it, inserted] = peer.overrides.insert_or_assign(prefix, std::move(value));
    if (inserted) peer.ribout->override_holders[prefix].push_back(peer.id);
  }

  void clear_override(PeerState& peer, const util::Prefix& prefix) {
    if (peer.overrides.erase(prefix) == 0) return;
    auto& holders = peer.ribout->override_holders;
    auto it = holders.find(prefix);
    if (it != holders.end()) {
      std::erase(it->second, peer.id);
      if (it->second.empty()) holders.erase(it);
    }
  }

  /// Takes a member out of its group's synced set. Unflushed group work
  /// moves to the member's solo list (order preserved). clear_view forgets
  /// the advertised view entirely (peer down); a refresh keeps it, since
  /// RFC 2918 replays against what was really sent.
  void unsync_member(PeerState& peer, bool clear_view) {
    if (peer.synced) {
      RibOut& rb = *peer.ribout;
      for (const util::Prefix& prefix : rb.pending) queue_export(peer, prefix);
      peer.synced = false;
      if (--rb.synced_members == 0) {
        // Every queued prefix was just transferred; nobody is left to serve.
        rb.pending.clear();
        rb.pending_set.clear();
      }
    }
    if (clear_view) {
      while (!peer.overrides.empty()) clear_override(peer, peer.overrides.begin()->first);
      peer.fresh_view = true;
    }
  }

  /// One flush event: group flushes first, then solo drains in peer order.
  /// Each solo member joins the synced set as soon as its own drain
  /// completes, so several peers establishing in one event converge onto
  /// the shared rib immediately. The export-computation memo spans the
  /// whole event (groups and solos share the heavy work) and is cleared at
  /// the end — the next event re-runs policy, like the per-peer engine.
  void flush_ribout_event() {
    const bool timing = obs_.tracing();
    const std::uint64_t t0 = timing ? obs::now_ns() : 0;
    for (auto& rb : ribouts_) flush_ribout(*rb);
    for (auto& peer : peers_) {
      if (!peer->synced) flush_member_solo(*peer);
    }
    export_memo_.clear();
    if (timing) obs_.registry().observe(m_.export_ns, obs::now_ns() - t0, 0);
  }

  /// The memoised heavy half of export processing for one attribute group
  /// opened at `first`: outbound filter + export transform + encode, run
  /// once per (group, source instance, opening prefix) per flush event.
  struct ExportComputation {
    bool accepted = false;
    AttrsPtr attrs;                     // interned post-transform attrs
    std::vector<std::uint8_t> encoded;  // attribute section bytes
    obs::Provenance prov;               // provenance of the group's attrs
    /// Lazily-filled per-subsequent-prefix outbound filter verdicts.
    std::unordered_map<util::Prefix, char> member_verdicts;
  };

  struct ExportMemoKey {
    const RibOut* group = nullptr;
    std::uint64_t serial = 0;
    PeerId from = kLocalRoute;
    util::Prefix first;
    friend bool operator==(const ExportMemoKey&, const ExportMemoKey&) = default;
  };
  struct ExportMemoKeyHash {
    std::size_t operator()(const ExportMemoKey& k) const noexcept {
      std::size_t h = std::hash<const void*>{}(k.group);
      auto mix = [&h](std::size_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      };
      mix(std::hash<std::uint64_t>{}(k.serial));
      mix(std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(k.from)));
      mix(std::hash<util::Prefix>{}(k.first));
      return h;
    }
  };

  ExportComputation& export_computation(RibOut& rb, PeerState& dst,
                                        const util::Prefix& first, const LocRibEntry& best) {
    const ExportMemoKey key{&rb, best.serial, best.from, first};
    auto it = export_memo_.find(key);
    if (it != export_memo_.end()) return it->second;
    ExportComputation comp;
    auto work = std::make_shared<Attrs>(*best.attrs);
    std::uint32_t meta = best.meta;
    RouteCtx route{first, work.get(), work.get(), &meta, peer_of(best.from)};
    comp.prov = best.prov;
    if (run_outbound_filter(dst, route, best, 0, &comp.prov)) {
      apply_export_transform(*work, dst, best);
      util::ByteWriter attr_bytes;
      encode_group(dst, first, best, *work, meta, 0, attr_bytes, &comp.prov);
      comp.encoded.assign(attr_bytes.view().begin(), attr_bytes.view().end());
      comp.attrs = intern_attrs(std::move(work));
      comp.accepted = true;
    }
    return export_memo_.emplace(key, std::move(comp)).first->second;
  }

  bool export_member_verdict(ExportComputation& comp, PeerState& dst,
                             const util::Prefix& prefix, const LocRibEntry& best) {
    auto it = comp.member_verdicts.find(prefix);
    if (it != comp.member_verdicts.end()) return it->second != 0;
    std::uint32_t meta = best.meta;
    RouteCtx route{prefix, comp.attrs.get(), nullptr, &meta, peer_of(best.from)};
    const bool ok = run_outbound_filter(dst, route, best, 0);
    comp.member_verdicts.emplace(prefix, ok ? 1 : 0);
    return ok;
  }

  /// One message-stream class of a flush: members whose per-prefix
  /// (source, had-advertised) inputs are identical share one run of the
  /// legacy flush state machine and receive identical bytes.
  struct ExportClass {
    std::vector<PeerState*> members;  // bulk members (generic class only)
    PeerState* special = nullptr;     // the single member (special/solo class)
    UpdateBuilder builder;
    std::uint64_t group_serial = 0;
    PeerId group_from = kLocalRoute;
    bool group_open = false;
    bool group_accepted = false;
    ExportComputation* comp = nullptr;
  };

  /// Any synced member works as the evaluation target for non-peer-scoped
  /// export processing (the RibOutKey carries everything policy reads).
  PeerState& ribout_representative(RibOut& rb) {
    for (PeerId id : rb.members) {
      if (peers_[id]->synced) return *peers_[id];
    }
    return *peers_[rb.members.front()];  // group flushes require a synced member
  }

  /// Advances one class machine by one prefix — the exact per-peer
  /// flush_peer_serial step with the heavy ops memoised — and returns the
  /// member-visible outcome: the advertised attrs, or null for
  /// withdrawn/absent. `weight` scales exports_rejected to the class's
  /// member count, preserving per-peer-engine counter values (including its
  /// double count for a rejected group-opening route).
  AttrsPtr step_class(ExportClass& c, RibOut& rb, const util::Prefix& prefix,
                      const LocRibEntry* best, bool had, std::size_t weight) {
    if (best == nullptr || (c.special != nullptr && best->from == c.special->id)) {
      if (had) c.builder.withdraw_prefix(prefix);
      return nullptr;
    }
    if (!c.group_open || c.group_serial != best->serial || c.group_from != best->from) {
      c.group_open = true;
      c.group_serial = best->serial;
      c.group_from = best->from;
      PeerState& rep = c.special != nullptr ? *c.special : ribout_representative(rb);
      c.comp = &export_computation(rb, rep, prefix, *best);
      c.group_accepted = c.comp->accepted;
      if (c.group_accepted) {
        c.builder.begin_group(c.comp->encoded);
      } else if (weight != 0) {
        count(m_.exports_rejected, weight);  // the export_group-internal count
      }
    } else if (c.group_accepted) {
      PeerState& rep = c.special != nullptr ? *c.special : ribout_representative(rb);
      if (!export_member_verdict(*c.comp, rep, prefix, *best)) {
        if (had) c.builder.withdraw_prefix(prefix);
        return nullptr;
      }
    }
    if (!c.group_accepted) {
      if (weight != 0) count(m_.exports_rejected, weight);  // the call-site count
      if (had) c.builder.withdraw_prefix(prefix);
      return nullptr;
    }
    c.builder.add_prefix(prefix);
    return c.comp->attrs;
  }

  /// Before the shared rib entry for `prefix` changes, copy the old base
  /// value into overrides of unsynced members that still advertise a view
  /// (a refresh in flight), so the rewrite cannot alter what they are known
  /// to have sent.
  void preserve_views(RibOut& rb, const std::vector<PeerState*>& holders,
                      const util::Prefix& prefix, const LocRibEntry* best,
                      const AttrsPtr& new_attrs) {
    if (holders.empty()) return;
    auto old_it = rb.rib.find(prefix);
    for (PeerState* o : holders) {
      if (o->overrides.contains(prefix)) continue;
      const AttrsPtr* old_base = (old_it != rb.rib.end() && old_it->second.excluded != o->id)
                                     ? &old_it->second.attrs
                                     : nullptr;
      const bool new_present =
          new_attrs != nullptr && best != nullptr && best->from != o->id;
      const bool same = old_base == nullptr ? !new_present
                                            : (new_present && *old_base == new_attrs);
      if (same) continue;
      set_override(*o, prefix,
                   old_base != nullptr ? std::optional<AttrsPtr>(*old_base)
                                       : std::optional<AttrsPtr>(std::nullopt));
    }
  }

  void flush_ribout(RibOut& rb) {
    if (rb.pending.empty()) return;
    if (rb.synced_members == 0) {
      // Content was transferred to the members' solo lists at unsync time.
      rb.pending.clear();
      rb.pending_set.clear();
      return;
    }

    // Members whose stream can diverge from the bulk for some pending
    // prefix: the best route's source (split horizon), members a rib entry
    // is hidden from, and override holders. Each gets its own machine.
    std::vector<PeerState*> specials;
    std::vector<PeerState*> bulk;
    {
      std::unordered_set<PeerId> special_ids;
      for (const util::Prefix& prefix : rb.pending) {
        if (const LocRibEntry* b = this->best(prefix);
            b != nullptr && b->from != kLocalRoute) {
          special_ids.insert(b->from);
        }
        if (auto it = rb.rib.find(prefix);
            it != rb.rib.end() && it->second.excluded != kLocalRoute) {
          special_ids.insert(it->second.excluded);
        }
        if (auto it = rb.override_holders.find(prefix); it != rb.override_holders.end()) {
          for (PeerId id : it->second) special_ids.insert(id);
        }
      }
      for (PeerId id : rb.members) {
        PeerState& p = *peers_[id];
        if (!p.synced) continue;
        (special_ids.contains(id) ? specials : bulk).push_back(&p);
      }
    }

    std::vector<PeerState*> view_holders;
    for (PeerId id : rb.members) {
      PeerState& p = *peers_[id];
      if (!p.synced && !p.fresh_view) view_holders.push_back(&p);
    }

    std::vector<ExportClass> classes(1 + specials.size());
    classes[0].members = std::move(bulk);
    for (std::size_t i = 0; i < specials.size(); ++i) classes[1 + i].special = specials[i];

    std::vector<char> special_had(specials.size());
    std::vector<AttrsPtr> special_out(specials.size());
    for (const util::Prefix& prefix : rb.pending) {
      const LocRibEntry* best = this->best(prefix);
      // Pre-write views: every class's `had` before the rib changes.
      const bool generic_had = rb.rib.contains(prefix);
      for (std::size_t i = 0; i < specials.size(); ++i) {
        special_had[i] = ribout_view_lookup(*specials[i], prefix) != nullptr ? 1 : 0;
      }
      // The generic machine always runs — it maintains the shared rib even
      // when every synced member is special this cycle.
      const AttrsPtr generic_out =
          step_class(classes[0], rb, prefix, best, generic_had, classes[0].members.size());
      for (std::size_t i = 0; i < specials.size(); ++i) {
        special_out[i] = step_class(classes[1 + i], rb, prefix, best, special_had[i] != 0, 1);
      }
      // Write phase: the generic outcome becomes the shared rib entry…
      preserve_views(rb, view_holders, prefix, best, generic_out);
      if (generic_out != nullptr) {
        rb.rib[prefix] = RibOutEntry{generic_out, best->from, classes[0].comp->prov};
      } else {
        rb.rib.erase(prefix);
      }
      // …and each special's outcome reconciles against it as an override.
      for (std::size_t i = 0; i < specials.size(); ++i) {
        PeerState& m = *specials[i];
        auto it = rb.rib.find(prefix);
        const AttrsPtr* base =
            (it != rb.rib.end() && it->second.excluded != m.id) ? &it->second.attrs : nullptr;
        const AttrsPtr& out = special_out[i];
        const bool same = (out == nullptr && base == nullptr) ||
                          (out != nullptr && base != nullptr && out == *base);
        if (same) {
          clear_override(m, prefix);
        } else {
          set_override(m, prefix,
                       out != nullptr ? std::optional<AttrsPtr>(out)
                                      : std::optional<AttrsPtr>(std::nullopt));
        }
      }
    }

    // Emit: each class's messages are encoded once and fanned to members.
    for (ExportClass& c : classes) {
      if (c.special != nullptr) {
        send_built(*c.special, c.builder);
        continue;
      }
      if (c.members.empty()) continue;  // rib-only run, nothing to send
      const std::vector<std::vector<std::uint8_t>> messages = c.builder.finish();
      for (const auto& wire : messages) {
        count(m_.messages_built);
        count(m_.bytes_built, wire.size());
      }
      for (PeerState* member : c.members) {
        for (const auto& wire : messages) {
          member->session.send_bytes(wire);
          member->session.count_update_sent();
          count(m_.updates_out);
        }
      }
    }
    rb.pending.clear();
    rb.pending_set.clear();
  }

  /// Drains an unsynced member's solo work list through the class machine
  /// and joins it to the synced set. With no synced member left, the drain
  /// defines the shared rib directly; otherwise divergence from the rib is
  /// kept as overrides.
  void flush_member_solo(PeerState& peer) {
    if (!peer.session.established()) return;  // keep pending; replayed on establishment
    RibOut& rb = *peer.ribout;
    const bool alone = rb.synced_members == 0;
    std::vector<PeerState*> view_holders;
    if (alone) {
      for (PeerId id : rb.members) {
        PeerState* o = peers_[id].get();
        if (o != &peer && !o->synced && !o->fresh_view) view_holders.push_back(o);
      }
    }
    if (alone && peer.fresh_view && !rb.rib.empty()) {
      // A fresh member syncing alone redefines the shared rib from scratch
      // (its solo list need not cover withdraws queued to members now down);
      // only unsynced view-holders may still depend on the old content.
      for (const auto& [prefix, entry] : rb.rib) {
        preserve_views(rb, view_holders, prefix, nullptr, AttrsPtr());
      }
      rb.rib.clear();
    }
    if (!peer.pending.empty()) {
      ExportClass cls;
      cls.special = &peer;
      for (const util::Prefix& prefix : peer.pending) {
        const LocRibEntry* best = this->best(prefix);
        const bool had = ribout_view_lookup(peer, prefix) != nullptr;
        AttrsPtr out = step_class(cls, rb, prefix, best, had, 1);
        if (alone) {
          preserve_views(rb, view_holders, prefix, best, out);
          if (out != nullptr) {
            rb.rib[prefix] = RibOutEntry{out, best->from, cls.comp->prov};
          } else {
            rb.rib.erase(prefix);
          }
          clear_override(peer, prefix);
        } else {
          auto it = rb.rib.find(prefix);
          const AttrsPtr* base = (it != rb.rib.end() && it->second.excluded != peer.id)
                                     ? &it->second.attrs
                                     : nullptr;
          const bool same = (out == nullptr && base == nullptr) ||
                            (out != nullptr && base != nullptr && out == *base);
          if (same) {
            clear_override(peer, prefix);
          } else {
            set_override(peer, prefix,
                         out != nullptr ? std::optional<AttrsPtr>(out)
                                        : std::optional<AttrsPtr>(std::nullopt));
          }
        }
      }
      send_built(peer, cls.builder);
      peer.pending.clear();
      peer.pending_set.clear();
    }
    peer.fresh_view = false;
    peer.synced = true;
    ++rb.synced_members;
  }

  bool run_outbound_filter(PeerState& peer, RouteCtx& route, const LocRibEntry& best,
                           std::size_t slot, obs::Provenance* prov = nullptr) {
    xbgp::ExecContext ctx;
    ctx.op = xbgp::Op::kOutboundFilter;
    ctx.peer = &peer;
    ctx.src_peer = peer_of(best.from);
    ctx.route = &route;
    if (recording()) ctx.prov = prov;
    xbgp::PrefixArg parg{route.prefix.addr().value(), route.prefix.length(), {}};
    ctx.add_arg(xbgp::arg::kPrefix,
                std::span(reinterpret_cast<const std::uint8_t*>(&parg), sizeof(parg)));
    const std::uint64_t verdict = vmm_.execute_on(
        xbgp::Op::kOutboundFilter, ctx,
        [&] { return native_export_policy(peer, route, best, scratch_[slot]); }, slot);
    return verdict == xbgp::kFilterAccept;
  }

  /// Native (default) export policy. Implements the iBGP split-horizon rule
  /// and, when this router is a native route reflector, RFC 4456 reflection
  /// (which mutates the working copy: ORIGINATOR_ID + CLUSTER_LIST).
  std::uint64_t native_export_policy(PeerState& dst, RouteCtx& route,
                                     const LocRibEntry& best, PolicyScratch& scratch) {
    const bool from_ibgp = best.from != kLocalRoute &&
                           peers_[best.from]->session.peer_type() == bgp::PeerType::kIbgp;
    const bool to_ibgp = dst.session.peer_type() == bgp::PeerType::kIbgp;
    if (from_ibgp && to_ibgp) {
      if (!cfg_.native_route_reflector) return xbgp::kFilterReject;
      const bool from_client = peers_[best.from]->cfg.rr_client;
      const bool to_client = dst.cfg.rr_client;
      if (!from_client && !to_client) return xbgp::kFilterReject;
      if (route.mutable_attrs != nullptr) {
        Core::reflect(*route.mutable_attrs, peers_[best.from]->session.peer_id(),
                      cfg_.cluster_id);
      }
    }
    if (cfg_.export_policy != nullptr &&
        !run_policy(*cfg_.export_policy, route, dst, scratch)) {
      return xbgp::kFilterReject;
    }
    return xbgp::kFilterAccept;
  }

  /// The representation-independent parts of RFC 4271 §5 export processing.
  void apply_export_transform(Attrs& attrs, PeerState& dst, const LocRibEntry& best) {
    if (dst.session.peer_type() == bgp::PeerType::kEbgp) {
      Core::strip_ibgp_only(attrs);
      Core::prepend_as(attrs, cfg_.asn);
      Core::set_next_hop(attrs, cfg_.address);
    } else {
      // iBGP: ensure LOCAL_PREF (RFC 4271 §5.1.5); nexthop-self for locally
      // originated routes and for peers configured with next-hop-self.
      Core::set_local_pref(attrs, Core::local_pref_or(attrs, 100));
      if (best.from == kLocalRoute || dst.cfg.next_hop_self) {
        Core::set_next_hop(attrs, cfg_.address);
      }
    }
  }

  bool fill_peer_info(PeerState* peer, xbgp::PeerInfo& out) {
    if (peer == nullptr) return false;
    out.router_id = peer->session.peer_id();
    out.asn = peer->session.config().peer_asn;
    out.addr = peer->cfg.address.value();
    out.peer_type = peer->session.peer_type() == bgp::PeerType::kIbgp ? xbgp::kPeerTypeIbgp
                                                                      : xbgp::kPeerTypeEbgp;
    out.rr_client = peer->cfg.rr_client ? 1 : 0;
    out.local_router_id = cfg_.router_id;
    out.local_asn = cfg_.asn;
    out.local_addr = cfg_.address.value();
    return true;
  }

  // ------------------------------------------------------------------------------
  net::EventLoop& loop_;
  Config cfg_;
  obs::Telemetry obs_;  // before vmm_: the VMM holds a pointer into it
  EngineMetrics m_;
  xbgp::Vmm vmm_;
  std::size_t shards_;          // == cfg_.parallelism (>= 1)
  util::ThreadPool pool_;       // shards_ - 1 workers; the caller participates
  std::vector<PolicyScratch> scratch_;  // one per execution slot
  std::vector<std::unique_ptr<PeerState>> peers_;
  std::unordered_map<util::Prefix, LocalRoute> local_routes_;
  /// Loc-RIB and FIB, partitioned by util::prefix_shard().
  std::vector<std::unordered_map<util::Prefix, LocRibEntry>> loc_rib_;
  std::vector<std::unique_ptr<FibShard>> fib_;
  std::vector<PendingUpdate> ingest_batch_;
  bool ingest_scheduled_ = false;
  bool flush_scheduled_ = false;
  // RibOut export engine state.
  bgp::Interner<Attrs> interner_;
  std::atomic<std::uint64_t> attr_serial_{0};
  xbgp::ExportManifestIdentity manifest_identity_;
  std::vector<std::unique_ptr<RibOut>> ribouts_;  // creation (= flush) order
  std::unordered_map<RibOutKey, RibOut*, RibOutKeyHash> ribout_index_;
  std::unordered_map<ExportMemoKey, ExportComputation, ExportMemoKeyHash> export_memo_;
};

}  // namespace xb::hosts::engine
