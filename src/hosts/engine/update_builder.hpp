// Direct wire-format builder for outgoing UPDATE messages.
//
// Hosts encode a group's path-attribute section once (native encoder plus
// the BGP_ENCODE_MESSAGE extension chain) and then pack as many NLRI as fit
// under the 4096-byte message limit — the packing behaviour real
// implementations use to amortise attribute encoding across prefixes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/codec.hpp"
#include "bgp/types.hpp"
#include "util/bytes.hpp"
#include "util/ip.hpp"

namespace xb::hosts::engine {

class UpdateBuilder {
 public:
  /// Starts a new attribute group. Flushes any open advertisement message.
  void begin_group(std::span<const std::uint8_t> attr_bytes) {
    flush_advertisement();
    group_attrs_.assign(attr_bytes.begin(), attr_bytes.end());
  }

  /// Adds one NLRI under the current group, emitting a message when full.
  void add_prefix(const util::Prefix& prefix) {
    const std::size_t need = 1 + (prefix.length() + 7) / 8;
    const std::size_t base = bgp::kHeaderSize + 2 + 2 + group_attrs_.size();
    if (base + nlri_.size() + need > bgp::kMaxMessageSize) flush_advertisement();
    bgp::encode_prefix(nlri_, prefix);
  }

  /// Queues one withdrawal, emitting a message when full.
  void withdraw_prefix(const util::Prefix& prefix) {
    const std::size_t need = 1 + (prefix.length() + 7) / 8;
    if (bgp::kHeaderSize + 2 + 2 + withdrawn_.size() + need > bgp::kMaxMessageSize) {
      flush_withdrawals();
    }
    bgp::encode_prefix(withdrawn_, prefix);
  }

  /// Completes all open messages and returns them (builder is reusable after).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> finish() {
    flush_advertisement();
    flush_withdrawals();
    auto out = std::move(messages_);
    messages_.clear();
    return out;
  }

  /// Cumulative encode work across the builder's lifetime (messages survive
  /// finish() resets): how many messages were packed and their total bytes.
  [[nodiscard]] std::uint64_t built_messages() const noexcept { return built_messages_; }
  [[nodiscard]] std::uint64_t built_bytes() const noexcept { return built_bytes_; }

 private:
  void record_built(std::size_t bytes) noexcept {
    ++built_messages_;
    built_bytes_ += bytes;
  }

  void flush_advertisement() {
    if (nlri_.size() == 0) return;
    util::ByteWriter msg(bgp::kHeaderSize + 4 + group_attrs_.size() + nlri_.size());
    msg.fill(bgp::kMarkerByte, 16);
    msg.u16(static_cast<std::uint16_t>(bgp::kHeaderSize + 2 + 2 + group_attrs_.size() +
                                       nlri_.size()));
    msg.u8(static_cast<std::uint8_t>(bgp::MessageType::kUpdate));
    msg.u16(0);  // no withdrawals in advertisement messages
    msg.u16(static_cast<std::uint16_t>(group_attrs_.size()));
    msg.bytes(group_attrs_);
    msg.bytes(nlri_.view());
    messages_.push_back(std::move(msg).take());
    record_built(messages_.back().size());
    nlri_ = util::ByteWriter();
  }

  void flush_withdrawals() {
    if (withdrawn_.size() == 0) return;
    util::ByteWriter msg(bgp::kHeaderSize + 4 + withdrawn_.size());
    msg.fill(bgp::kMarkerByte, 16);
    msg.u16(static_cast<std::uint16_t>(bgp::kHeaderSize + 2 + withdrawn_.size() + 2));
    msg.u8(static_cast<std::uint8_t>(bgp::MessageType::kUpdate));
    msg.u16(static_cast<std::uint16_t>(withdrawn_.size()));
    msg.bytes(withdrawn_.view());
    msg.u16(0);  // empty path attributes
    messages_.push_back(std::move(msg).take());
    record_built(messages_.back().size());
    withdrawn_ = util::ByteWriter();
  }

  std::vector<std::uint8_t> group_attrs_;
  util::ByteWriter nlri_;
  util::ByteWriter withdrawn_;
  std::vector<std::vector<std::uint8_t>> messages_;
  std::uint64_t built_messages_ = 0;
  std::uint64_t built_bytes_ = 0;
};

}  // namespace xb::hosts::engine
