// Fir: an FRRouting-like attribute core.
//
// Mirrors FRR's `struct attr`: every known path attribute is parsed into a
// decomposed, host-byte-order field at ingest and re-encoded on demand. This
// is the representation the paper calls out in §2.1 — "FRRouting uses an
// internal representation that is different from our neutral one. We thus
// had to implement several functions to do the conversion between the two
// representations." Those conversion functions are exactly the get_attr /
// from_wire / to_wire paths below, and their cost is what makes xFir's
// extension overhead higher than xWren's in the Fig. 4 reproduction.
//
// FRR also had no generic attribute API; the `extra` overlay (arbitrary
// wire-form attributes added by extension code, shadowing native fields)
// is the attribute API the paper says they had to add.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/attr.hpp"
#include "bgp/types.hpp"
#include "util/ip.hpp"

namespace xb::hosts::fir {

/// Decomposed attribute block (FRR-like `struct attr`).
struct FirAttrs {
  // presence flags for optional fields
  bool has_next_hop = false;
  bool has_med = false;
  bool has_local_pref = false;
  bool has_originator = false;
  bool atomic_aggregate = false;

  std::uint8_t origin = static_cast<std::uint8_t>(bgp::Origin::kIncomplete);
  util::Ipv4Addr next_hop;
  std::uint32_t med = 0;
  std::uint32_t local_pref = 0;
  bgp::AsPath as_path;
  std::vector<std::uint32_t> communities;
  std::uint32_t originator_id = 0;
  std::vector<std::uint32_t> cluster_list;

  /// xBGP attribute overlay: extension-managed attributes in neutral wire
  /// form. Shadows native fields with the same code on read and encode.
  std::vector<bgp::WireAttr> extra;
};

class FirCore {
 public:
  using Attrs = FirAttrs;

  /// Neutral -> internal. Parses every known attribute into its decomposed
  /// field; unknown attributes are dropped unless their code appears in
  /// `keep_codes` (attributes added by extension code at RECEIVE_MESSAGE).
  static Attrs from_wire(const bgp::AttributeSet& set,
                         std::span<const std::uint8_t> keep_codes);

  /// Internal -> neutral (full set, overlay included). Used by tests and the
  /// cross-host equivalence checks; the hot encode path is encode_native.
  static bgp::AttributeSet to_wire(const Attrs& attrs);

  /// Encodes the native fields (skipping those shadowed by the overlay)
  /// into the path-attribute section of an outgoing UPDATE.
  static void encode_native(const Attrs& attrs, util::ByteWriter& w);

  /// Canonical byte key for hash-consed interning: the full wire encoding
  /// (overlay included) plus the sorted overlay code list, so two values
  /// intern together only when they also agree on which attributes are
  /// overlay-managed (overlay placement changes mutation behaviour). The
  /// same route history yields the same key on both host cores.
  static std::string canonical_key(const Attrs& attrs);

  /// xBGP get_attr: overlay first, then re-encode the native field — the
  /// per-call conversion cost of the FRR-style representation.
  static std::optional<bgp::WireAttr> get_attr(const Attrs& attrs, std::uint8_t code);
  /// xBGP set_attr: store into the overlay (shadowing any native field).
  static bool set_attr(Attrs& attrs, bgp::WireAttr attr);

  // --- accessors used by the decision process and the engine -----------------
  static std::optional<util::Ipv4Addr> next_hop(const Attrs& a) {
    return a.has_next_hop ? std::optional(a.next_hop) : std::nullopt;
  }
  static std::uint32_t local_pref_or(const Attrs& a, std::uint32_t fallback) {
    return a.has_local_pref ? a.local_pref : fallback;
  }
  static std::optional<std::uint32_t> med(const Attrs& a) {
    return a.has_med ? std::optional(a.med) : std::nullopt;
  }
  static bgp::Origin origin(const Attrs& a) { return static_cast<bgp::Origin>(a.origin); }
  static std::size_t as_path_length(const Attrs& a) { return a.as_path.length(); }
  static std::optional<bgp::Asn> first_asn(const Attrs& a) { return a.as_path.first_asn(); }
  static std::optional<bgp::Asn> origin_asn(const Attrs& a) { return a.as_path.origin_asn(); }
  static bool as_path_contains(const Attrs& a, bgp::Asn asn) { return a.as_path.contains(asn); }
  static std::optional<bgp::RouterId> originator_id(const Attrs& a) {
    return a.has_originator ? std::optional(a.originator_id) : std::nullopt;
  }
  static std::size_t cluster_list_length(const Attrs& a) { return a.cluster_list.size(); }
  static bool cluster_list_contains(const Attrs& a, std::uint32_t id);

  /// Policy-engine adapters: fill the scratch vectors with the flattened AS
  /// path / community list (Fir: direct field reads — FRR keeps these parsed).
  static void flatten_as_path(const Attrs& a, std::vector<bgp::Asn>& out) {
    out = a.as_path.flatten();
  }
  static void communities_of(const Attrs& a, std::vector<std::uint32_t>& out) {
    out = a.communities;
  }

  // --- mutation used by the engine's export transforms ------------------------
  static void prepend_as(Attrs& a, bgp::Asn asn) { a.as_path.prepend(asn); }
  static void set_next_hop(Attrs& a, util::Ipv4Addr nh) {
    a.next_hop = nh;
    a.has_next_hop = true;
  }
  static void set_local_pref(Attrs& a, std::uint32_t pref) {
    a.local_pref = pref;
    a.has_local_pref = true;
  }
  /// Strips attributes that must not cross an eBGP boundary
  /// (LOCAL_PREF, MED, ORIGINATOR_ID, CLUSTER_LIST — native and overlay).
  static void strip_ibgp_only(Attrs& a);
  /// Native route reflection (RFC 4456): sets ORIGINATOR_ID if absent and
  /// prepends `cluster_id` to CLUSTER_LIST.
  static void reflect(Attrs& a, bgp::RouterId originator, std::uint32_t cluster_id);
};

}  // namespace xb::hosts::fir
