#include "hosts/fir/fir_core.hpp"

#include <algorithm>

namespace xb::hosts::fir {

using bgp::attr_code::kAsPath;
using bgp::attr_code::kAtomicAggregate;
using bgp::attr_code::kClusterList;
using bgp::attr_code::kCommunities;
using bgp::attr_code::kLocalPref;
using bgp::attr_code::kMed;
using bgp::attr_code::kNextHop;
using bgp::attr_code::kOrigin;
using bgp::attr_code::kOriginatorId;

namespace {
bool overlay_has(const FirAttrs& a, std::uint8_t code) {
  return std::any_of(a.extra.begin(), a.extra.end(),
                     [code](const bgp::WireAttr& w) { return w.code == code; });
}
}  // namespace

FirAttrs FirCore::from_wire(const bgp::AttributeSet& set,
                            std::span<const std::uint8_t> keep_codes) {
  FirAttrs out;
  for (const auto& attr : set.all()) {
    switch (attr.code) {
      case kOrigin:
        if (auto v = bgp::parse_origin(attr)) out.origin = static_cast<std::uint8_t>(*v);
        break;
      case kAsPath:
        if (auto v = bgp::AsPath::from_attr(attr)) out.as_path = std::move(*v);
        break;
      case kNextHop:
        if (auto v = bgp::parse_next_hop(attr)) {
          out.next_hop = *v;
          out.has_next_hop = true;
        }
        break;
      case kMed:
        if (auto v = bgp::parse_med(attr)) {
          out.med = *v;
          out.has_med = true;
        }
        break;
      case kLocalPref:
        if (auto v = bgp::parse_local_pref(attr)) {
          out.local_pref = *v;
          out.has_local_pref = true;
        }
        break;
      case kAtomicAggregate:
        out.atomic_aggregate = true;
        break;
      case kCommunities:
        out.communities = bgp::parse_communities(attr);
        break;
      case kOriginatorId:
        if (auto v = bgp::parse_originator_id(attr)) {
          out.originator_id = *v;
          out.has_originator = true;
        }
        break;
      case kClusterList:
        out.cluster_list = bgp::parse_cluster_list(attr);
        break;
      default:
        // Unknown attribute: FRR-style internals have no slot for it. Keep
        // it only when extension code explicitly added it (paper §2.1: "the
        // internals of the host BGP implementation do not allow adding
        // unsupported attributes ... We rewrote this part").
        if (std::find(keep_codes.begin(), keep_codes.end(), attr.code) != keep_codes.end()) {
          out.extra.push_back(attr);
        }
        break;
    }
  }
  return out;
}

bgp::AttributeSet FirCore::to_wire(const Attrs& attrs) {
  bgp::AttributeSet out;
  if (!overlay_has(attrs, kOrigin)) {
    out.put(bgp::make_origin(static_cast<bgp::Origin>(attrs.origin)));
  }
  // AS_PATH is mandatory and may legitimately be empty (locally originated).
  if (!overlay_has(attrs, kAsPath)) out.put(attrs.as_path.to_attr());
  if (attrs.has_next_hop && !overlay_has(attrs, kNextHop)) {
    out.put(bgp::make_next_hop(attrs.next_hop));
  }
  if (attrs.has_med && !overlay_has(attrs, kMed)) out.put(bgp::make_med(attrs.med));
  if (attrs.has_local_pref && !overlay_has(attrs, kLocalPref)) {
    out.put(bgp::make_local_pref(attrs.local_pref));
  }
  if (attrs.atomic_aggregate && !overlay_has(attrs, kAtomicAggregate)) {
    out.put(bgp::WireAttr{bgp::attr_flag::kTransitive, kAtomicAggregate, {}});
  }
  if (!attrs.communities.empty() && !overlay_has(attrs, kCommunities)) {
    out.put(bgp::make_communities(attrs.communities));
  }
  if (attrs.has_originator && !overlay_has(attrs, kOriginatorId)) {
    out.put(bgp::make_originator_id(attrs.originator_id));
  }
  if (!attrs.cluster_list.empty() && !overlay_has(attrs, kClusterList)) {
    out.put(bgp::make_cluster_list(attrs.cluster_list));
  }
  for (const auto& w : attrs.extra) out.put(w);
  return out;
}

void FirCore::encode_native(const Attrs& attrs, util::ByteWriter& w) {
  // Canonical ascending-code order, skipping overlay-shadowed fields (the
  // overlay is emitted by the BGP_ENCODE_MESSAGE extension chain).
  if (!overlay_has(attrs, kOrigin)) {
    bgp::AttributeSet::encode_one(w, bgp::make_origin(static_cast<bgp::Origin>(attrs.origin)));
  }
  if (!overlay_has(attrs, kAsPath)) {
    bgp::AttributeSet::encode_one(w, attrs.as_path.to_attr());
  }
  if (attrs.has_next_hop && !overlay_has(attrs, kNextHop)) {
    bgp::AttributeSet::encode_one(w, bgp::make_next_hop(attrs.next_hop));
  }
  if (attrs.has_med && !overlay_has(attrs, kMed)) {
    bgp::AttributeSet::encode_one(w, bgp::make_med(attrs.med));
  }
  if (attrs.has_local_pref && !overlay_has(attrs, kLocalPref)) {
    bgp::AttributeSet::encode_one(w, bgp::make_local_pref(attrs.local_pref));
  }
  if (attrs.atomic_aggregate && !overlay_has(attrs, kAtomicAggregate)) {
    bgp::AttributeSet::encode_one(
        w, bgp::WireAttr{bgp::attr_flag::kTransitive, kAtomicAggregate, {}});
  }
  if (!attrs.communities.empty() && !overlay_has(attrs, kCommunities)) {
    bgp::AttributeSet::encode_one(w, bgp::make_communities(attrs.communities));
  }
  if (attrs.has_originator && !overlay_has(attrs, kOriginatorId)) {
    bgp::AttributeSet::encode_one(w, bgp::make_originator_id(attrs.originator_id));
  }
  if (!attrs.cluster_list.empty() && !overlay_has(attrs, kClusterList)) {
    bgp::AttributeSet::encode_one(w, bgp::make_cluster_list(attrs.cluster_list));
  }
}

std::string FirCore::canonical_key(const Attrs& attrs) {
  util::ByteWriter w;
  to_wire(attrs).encode(w);
  const auto view = w.view();
  std::string key(reinterpret_cast<const char*>(view.data()), view.size());
  key.push_back('\xff');  // separates wire bytes from the overlay code list
  std::vector<std::uint8_t> codes;
  codes.reserve(attrs.extra.size());
  for (const auto& a : attrs.extra) codes.push_back(a.code);
  std::sort(codes.begin(), codes.end());
  for (std::uint8_t c : codes) key.push_back(static_cast<char>(c));
  return key;
}

std::optional<bgp::WireAttr> FirCore::get_attr(const Attrs& attrs, std::uint8_t code) {
  for (const auto& w : attrs.extra) {
    if (w.code == code) return w;
  }
  // Re-encode the decomposed field into neutral form — FRR's conversion cost.
  switch (code) {
    case kOrigin:
      return bgp::make_origin(static_cast<bgp::Origin>(attrs.origin));
    case kAsPath:
      return attrs.as_path.to_attr();
    case kNextHop:
      if (!attrs.has_next_hop) return std::nullopt;
      return bgp::make_next_hop(attrs.next_hop);
    case kMed:
      if (!attrs.has_med) return std::nullopt;
      return bgp::make_med(attrs.med);
    case kLocalPref:
      if (!attrs.has_local_pref) return std::nullopt;
      return bgp::make_local_pref(attrs.local_pref);
    case kCommunities:
      if (attrs.communities.empty()) return std::nullopt;
      return bgp::make_communities(attrs.communities);
    case kOriginatorId:
      if (!attrs.has_originator) return std::nullopt;
      return bgp::make_originator_id(attrs.originator_id);
    case kClusterList:
      if (attrs.cluster_list.empty()) return std::nullopt;
      return bgp::make_cluster_list(attrs.cluster_list);
    default:
      return std::nullopt;
  }
}

bool FirCore::set_attr(Attrs& attrs, bgp::WireAttr attr) {
  for (auto& w : attrs.extra) {
    if (w.code == attr.code) {
      w = std::move(attr);
      return true;
    }
  }
  attrs.extra.push_back(std::move(attr));
  return true;
}

bool FirCore::cluster_list_contains(const Attrs& a, std::uint32_t id) {
  return std::find(a.cluster_list.begin(), a.cluster_list.end(), id) != a.cluster_list.end();
}

void FirCore::strip_ibgp_only(Attrs& a) {
  a.has_local_pref = false;
  a.has_med = false;
  a.has_originator = false;
  a.cluster_list.clear();
  std::erase_if(a.extra, [](const bgp::WireAttr& w) {
    return w.code == kLocalPref || w.code == kMed || w.code == kOriginatorId ||
           w.code == kClusterList || !w.transitive();
  });
}

void FirCore::reflect(Attrs& a, bgp::RouterId originator, std::uint32_t cluster_id) {
  if (!a.has_originator) {
    a.originator_id = originator;
    a.has_originator = true;
  }
  a.cluster_list.insert(a.cluster_list.begin(), cluster_id);
}

}  // namespace xb::hosts::fir
