// xFir: the FRRouting-like xBGP-compliant BGP implementation.
//
// FirRouter = the shared RFC 4271 engine over FRR-style internals
// (decomposed host-order attribute structs; a bolted-on attribute API for
// xBGP; origin validation over a prefix *trie*, as FRRouting browses "a
// dedicated trie for validated ROAs each time a prefix needs to be checked",
// paper §3.4).
#pragma once

#include "hosts/engine/router.hpp"
#include "hosts/fir/fir_core.hpp"
#include "rpki/roa_trie.hpp"

namespace xb::hosts::fir {

using FirRouter = engine::Router<FirCore>;

/// The ROA store a native Fir deployment uses (FRR-style trie).
using FirRoaStore = rpki::RoaTrie;

}  // namespace xb::hosts::fir
