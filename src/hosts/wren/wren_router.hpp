// xWren: the BIRD-like xBGP-compliant BGP implementation.
//
// WrenRouter = the shared RFC 4271 engine over BIRD-style internals
// (wire-order flexible ea_list attribute storage; origin validation over a
// *hash table*, "as in BIRD", paper §3.4).
#pragma once

#include "hosts/engine/router.hpp"
#include "hosts/wren/wren_core.hpp"
#include "rpki/roa_hash.hpp"

namespace xb::hosts::wren {

using WrenRouter = engine::Router<WrenCore>;

/// The ROA store a native Wren deployment uses (BIRD-style hash table).
using WrenRoaStore = rpki::RoaHashTable;

}  // namespace xb::hosts::wren
