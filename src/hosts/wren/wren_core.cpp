#include "hosts/wren/wren_core.hpp"

#include <algorithm>

namespace xb::hosts::wren {

using bgp::attr_code::kAsPath;
using bgp::attr_code::kClusterList;
using bgp::attr_code::kLocalPref;
using bgp::attr_code::kMed;
using bgp::attr_code::kNextHop;
using bgp::attr_code::kOrigin;
using bgp::attr_code::kOriginatorId;

void WrenAttrs::put(bgp::WireAttr attr, bool extension_managed) {
  auto it = std::lower_bound(ea.begin(), ea.end(), attr.code,
                             [](const EaEntry& e, std::uint8_t code) {
                               return e.attr.code < code;
                             });
  if (it != ea.end() && it->attr.code == attr.code) {
    it->attr = std::move(attr);
    it->extension_managed = extension_managed;
    return;
  }
  ea.insert(it, EaEntry{std::move(attr), extension_managed});
}

void WrenAttrs::remove(std::uint8_t code) {
  std::erase_if(ea, [code](const EaEntry& e) { return e.attr.code == code; });
}

WrenAttrs WrenCore::from_wire(const bgp::AttributeSet& set,
                              std::span<const std::uint8_t> keep_codes) {
  WrenAttrs out;
  out.ea.reserve(set.size());
  for (const auto& attr : set.all()) {
    const bool known = attr.code == kOrigin || attr.code == kAsPath || attr.code == kNextHop ||
                       attr.code == kMed || attr.code == kLocalPref ||
                       attr.code == bgp::attr_code::kAtomicAggregate ||
                       attr.code == bgp::attr_code::kCommunities ||
                       attr.code == kOriginatorId || attr.code == kClusterList;
    const bool keep_unknown =
        std::find(keep_codes.begin(), keep_codes.end(), attr.code) != keep_codes.end();
    if (known) {
      out.ea.push_back(EaEntry{attr, false});
    } else if (keep_unknown) {
      out.ea.push_back(EaEntry{attr, true});  // extension-added -> managed
    }
  }
  return out;
}

bgp::AttributeSet WrenCore::to_wire(const Attrs& attrs) {
  bgp::AttributeSet out;
  for (const auto& e : attrs.ea) out.put(e.attr);
  return out;
}

void WrenCore::encode_native(const Attrs& attrs, util::ByteWriter& w) {
  for (const auto& e : attrs.ea) {
    if (e.extension_managed) continue;  // emitted by the ENCODE extension chain
    bgp::AttributeSet::encode_one(w, e.attr);
  }
}

std::string WrenCore::canonical_key(const Attrs& attrs) {
  util::ByteWriter w;
  for (const auto& e : attrs.ea) bgp::AttributeSet::encode_one(w, e.attr);
  const auto view = w.view();
  std::string key(reinterpret_cast<const char*>(view.data()), view.size());
  key.push_back('\xff');  // separates wire bytes from the managed code list
  // ea is code-sorted, so the managed code list comes out sorted directly.
  for (const auto& e : attrs.ea) {
    if (e.extension_managed) key.push_back(static_cast<char>(e.attr.code));
  }
  return key;
}

std::optional<bgp::WireAttr> WrenCore::get_attr(const Attrs& attrs, std::uint8_t code) {
  const EaEntry* e = attrs.find(code);
  if (e == nullptr) return std::nullopt;
  return e->attr;
}

bool WrenCore::set_attr(Attrs& attrs, bgp::WireAttr attr) {
  attrs.put(std::move(attr), /*extension_managed=*/true);
  return true;
}

// --- accessors -----------------------------------------------------------------

namespace {
std::uint32_t read_be32(std::span<const std::uint8_t> b) {
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | b[3];
}
}  // namespace

std::optional<util::Ipv4Addr> WrenCore::next_hop(const Attrs& a) {
  const EaEntry* e = a.find(kNextHop);
  if (e == nullptr || e->attr.value.size() != 4) return std::nullopt;
  return util::Ipv4Addr(read_be32(e->attr.value));
}

std::uint32_t WrenCore::local_pref_or(const Attrs& a, std::uint32_t fallback) {
  const EaEntry* e = a.find(kLocalPref);
  if (e == nullptr || e->attr.value.size() != 4) return fallback;
  return read_be32(e->attr.value);
}

std::optional<std::uint32_t> WrenCore::med(const Attrs& a) {
  const EaEntry* e = a.find(kMed);
  if (e == nullptr || e->attr.value.size() != 4) return std::nullopt;
  return read_be32(e->attr.value);
}

bgp::Origin WrenCore::origin(const Attrs& a) {
  const EaEntry* e = a.find(kOrigin);
  if (e == nullptr || e->attr.value.size() != 1 || e->attr.value[0] > 2) {
    return bgp::Origin::kIncomplete;
  }
  return static_cast<bgp::Origin>(e->attr.value[0]);
}

std::size_t WrenCore::as_path_length(const Attrs& a) {
  const EaEntry* e = a.find(kAsPath);
  if (e == nullptr) return 0;
  // Walk the wire segments without materialising an AsPath (as BIRD does).
  const auto& v = e->attr.value;
  std::size_t len = 0;
  std::size_t i = 0;
  while (i + 2 <= v.size()) {
    const std::uint8_t type = v[i];
    const std::size_t count = v[i + 1];
    i += 2 + count * 4;
    len += type == 2 ? count : 1;  // sequence members count 1 each, a set 1 total
  }
  return len;
}

std::optional<bgp::Asn> WrenCore::first_asn(const Attrs& a) {
  const EaEntry* e = a.find(kAsPath);
  if (e == nullptr) return std::nullopt;
  const auto& v = e->attr.value;
  if (v.size() < 6 || v[0] != 2 || v[1] == 0) return std::nullopt;
  return read_be32(std::span(v).subspan(2, 4));
}

std::optional<bgp::Asn> WrenCore::origin_asn(const Attrs& a) {
  const EaEntry* e = a.find(kAsPath);
  if (e == nullptr) return std::nullopt;
  auto path = bgp::AsPath::from_attr(e->attr);
  if (!path) return std::nullopt;
  return path->origin_asn();
}

bool WrenCore::as_path_contains(const Attrs& a, bgp::Asn asn) {
  const EaEntry* e = a.find(kAsPath);
  if (e == nullptr) return false;
  const auto& v = e->attr.value;
  std::size_t i = 0;
  while (i + 2 <= v.size()) {
    const std::size_t count = v[i + 1];
    i += 2;
    for (std::size_t k = 0; k < count && i + 4 <= v.size(); ++k, i += 4) {
      if (read_be32(std::span(v).subspan(i, 4)) == asn) return true;
    }
  }
  return false;
}

std::optional<bgp::RouterId> WrenCore::originator_id(const Attrs& a) {
  const EaEntry* e = a.find(kOriginatorId);
  if (e == nullptr || e->attr.value.size() != 4) return std::nullopt;
  return read_be32(e->attr.value);
}

std::size_t WrenCore::cluster_list_length(const Attrs& a) {
  const EaEntry* e = a.find(kClusterList);
  return e == nullptr ? 0 : e->attr.value.size() / 4;
}

bool WrenCore::cluster_list_contains(const Attrs& a, std::uint32_t id) {
  const EaEntry* e = a.find(kClusterList);
  if (e == nullptr) return false;
  const auto& v = e->attr.value;
  for (std::size_t i = 0; i + 4 <= v.size(); i += 4) {
    if (read_be32(std::span(v).subspan(i, 4)) == id) return true;
  }
  return false;
}

void WrenCore::flatten_as_path(const Attrs& a, std::vector<bgp::Asn>& out) {
  out.clear();
  const EaEntry* e = a.find(kAsPath);
  if (e == nullptr) return;
  const auto& v = e->attr.value;
  std::size_t i = 0;
  while (i + 2 <= v.size()) {
    const std::size_t count = v[i + 1];
    i += 2;
    for (std::size_t k = 0; k < count && i + 4 <= v.size(); ++k, i += 4) {
      out.push_back(read_be32(std::span(v).subspan(i, 4)));
    }
  }
}

void WrenCore::communities_of(const Attrs& a, std::vector<std::uint32_t>& out) {
  out.clear();
  const EaEntry* e = a.find(bgp::attr_code::kCommunities);
  if (e == nullptr) return;
  const auto& v = e->attr.value;
  for (std::size_t i = 0; i + 4 <= v.size(); i += 4) {
    out.push_back(read_be32(std::span(v).subspan(i, 4)));
  }
}

// --- mutation --------------------------------------------------------------------

void WrenCore::prepend_as(Attrs& a, bgp::Asn asn) {
  const EaEntry* e = a.find(kAsPath);
  bgp::AsPath path;
  if (e != nullptr) {
    if (auto parsed = bgp::AsPath::from_attr(e->attr)) path = std::move(*parsed);
  }
  path.prepend(asn);
  a.put(path.to_attr(), /*extension_managed=*/false);
}

void WrenCore::set_next_hop(Attrs& a, util::Ipv4Addr nh) {
  a.put(bgp::make_next_hop(nh), /*extension_managed=*/false);
}

void WrenCore::set_local_pref(Attrs& a, std::uint32_t pref) {
  a.put(bgp::make_local_pref(pref), /*extension_managed=*/false);
}

void WrenCore::strip_ibgp_only(Attrs& a) {
  std::erase_if(a.ea, [](const EaEntry& e) {
    return e.attr.code == kLocalPref || e.attr.code == kMed ||
           e.attr.code == kOriginatorId || e.attr.code == kClusterList ||
           !e.attr.transitive();
  });
}

void WrenCore::reflect(Attrs& a, bgp::RouterId originator, std::uint32_t cluster_id) {
  if (a.find(kOriginatorId) == nullptr) {
    a.put(bgp::make_originator_id(originator), /*extension_managed=*/false);
  }
  // Prepend our cluster id to the CLUSTER_LIST value bytes.
  std::vector<std::uint8_t> value{static_cast<std::uint8_t>(cluster_id >> 24),
                                  static_cast<std::uint8_t>(cluster_id >> 16),
                                  static_cast<std::uint8_t>(cluster_id >> 8),
                                  static_cast<std::uint8_t>(cluster_id)};
  if (const EaEntry* e = a.find(kClusterList)) {
    value.insert(value.end(), e->attr.value.begin(), e->attr.value.end());
  }
  a.put(bgp::WireAttr{bgp::attr_flag::kOptional, kClusterList, std::move(value)},
        /*extension_managed=*/false);
}

}  // namespace xb::hosts::wren
