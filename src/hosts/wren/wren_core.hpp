// Wren: a BIRD-like attribute core.
//
// Mirrors BIRD's `ea_list`: attributes are kept as a flexible, code-sorted
// list whose values stay in wire (network-order) form. Conversions at the
// xBGP API boundary are therefore nearly free — "BIRD includes a flexible
// API to manage BGP attributes. xBGP simply extends this API" (§2.1) — which
// is why xWren's extension overhead is lower than xFir's in the Fig. 4
// reproduction. The trade-off runs the other way on access: the decision
// process must parse values out of the list on every use.
//
// Attributes added by extension code are flagged extension-managed: the
// native encoder skips them and the BGP_ENCODE_MESSAGE chain emits them,
// keeping one emission path for custom attributes on both hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/attr.hpp"
#include "bgp/types.hpp"
#include "util/ip.hpp"

namespace xb::hosts::wren {

/// One ea_list entry: a wire-form attribute plus host-side bookkeeping.
struct EaEntry {
  bgp::WireAttr attr;
  bool extension_managed = false;  // added/overridden via the xBGP attr API
};

/// BIRD-like flexible attribute list, sorted by attribute code.
struct WrenAttrs {
  std::vector<EaEntry> ea;

  [[nodiscard]] const EaEntry* find(std::uint8_t code) const noexcept {
    for (const auto& e : ea) {
      if (e.attr.code == code) return &e;
      if (e.attr.code > code) break;
    }
    return nullptr;
  }
  EaEntry* find_mut(std::uint8_t code) noexcept {
    for (auto& e : ea) {
      if (e.attr.code == code) return &e;
      if (e.attr.code > code) break;
    }
    return nullptr;
  }
  void put(bgp::WireAttr attr, bool extension_managed);
  void remove(std::uint8_t code);
};

class WrenCore {
 public:
  using Attrs = WrenAttrs;

  /// Neutral -> internal: essentially a copy of the attribute list. Unknown
  /// attributes are dropped unless extension code added them (keep_codes).
  static Attrs from_wire(const bgp::AttributeSet& set,
                         std::span<const std::uint8_t> keep_codes);

  /// Internal -> neutral (full set, extension-managed entries included).
  static bgp::AttributeSet to_wire(const Attrs& attrs);

  /// Encodes non-extension-managed entries into an outgoing UPDATE.
  static void encode_native(const Attrs& attrs, util::ByteWriter& w);

  /// Canonical byte key for hash-consed interning: the wire-form ea list
  /// encoded directly (BIRD-style: the bytes *are* the value) plus the
  /// sorted extension-managed code list, which encode_native skips and so
  /// must disambiguate the key. Matches FirCore::canonical_key for the
  /// same route history.
  static std::string canonical_key(const Attrs& attrs);

  /// xBGP get_attr: a list lookup plus a copy — BIRD's cheap conversion.
  static std::optional<bgp::WireAttr> get_attr(const Attrs& attrs, std::uint8_t code);
  /// xBGP set_attr: inserts/overrides as an extension-managed entry.
  static bool set_attr(Attrs& attrs, bgp::WireAttr attr);

  // --- accessors (parse the wire value on every call, as BIRD does) ----------
  static std::optional<util::Ipv4Addr> next_hop(const Attrs& a);
  static std::uint32_t local_pref_or(const Attrs& a, std::uint32_t fallback);
  static std::optional<std::uint32_t> med(const Attrs& a);
  static bgp::Origin origin(const Attrs& a);
  static std::size_t as_path_length(const Attrs& a);
  static std::optional<bgp::Asn> first_asn(const Attrs& a);
  static std::optional<bgp::Asn> origin_asn(const Attrs& a);
  static bool as_path_contains(const Attrs& a, bgp::Asn asn);
  static std::optional<bgp::RouterId> originator_id(const Attrs& a);
  static std::size_t cluster_list_length(const Attrs& a);
  static bool cluster_list_contains(const Attrs& a, std::uint32_t id);

  /// Policy-engine adapters (Wren: parsed out of the wire-form ea_list per
  /// evaluation, as BIRD's filters do).
  static void flatten_as_path(const Attrs& a, std::vector<bgp::Asn>& out);
  static void communities_of(const Attrs& a, std::vector<std::uint32_t>& out);

  // --- mutation ---------------------------------------------------------------
  static void prepend_as(Attrs& a, bgp::Asn asn);
  static void set_next_hop(Attrs& a, util::Ipv4Addr nh);
  static void set_local_pref(Attrs& a, std::uint32_t pref);
  static void strip_ibgp_only(Attrs& a);
  static void reflect(Attrs& a, bgp::RouterId originator, std::uint32_t cluster_id);
};

}  // namespace xb::hosts::wren
