// A scripted raw-wire BGP actor for the stateful fuzzer.
//
// A ChaosPeer is deliberately NOT a PeerSession: it has no FSM, no timers
// and no opinions. It plays back a pre-computed schedule of raw byte writes
// (well-formed frames, malformed garbage, half-closes) against the DUT and
// records every byte the DUT sends in return. The recording is what the
// oracles judge: the reference SessionModel predicts which NOTIFICATIONs
// must appear, and the Fir-vs-Wren differential compares the decoded frame
// sequences two hosts produced for the same schedule.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bgp/codec.hpp"
#include "bgp/message.hpp"
#include "net/channel.hpp"
#include "net/event_loop.hpp"

namespace xb::fuzz {

/// One decoded frame recovered from the DUT's output stream.
struct RxFrame {
  bgp::MessageType type{};
  // Exactly one of these is populated, matching `type`. UPDATEs are stored
  // decoded (Fir and Wren may order attributes differently on the wire; the
  // decoded form is the host-independent one, same as the sink comparison in
  // differential_host_test).
  bgp::OpenMessage open;
  bgp::UpdateMessage update;
  bgp::NotificationMessage notification;
  bgp::RouteRefreshMessage refresh;
  friend bool operator==(const RxFrame&, const RxFrame&) = default;
};

class ChaosPeer {
 public:
  ChaosPeer(net::EventLoop& loop, net::Duplex::End end) : loop_(loop), end_(end) {
    end_.on_readable([this] {
      auto chunk = end_.read_all();
      rx_.insert(rx_.end(), chunk.begin(), chunk.end());
    });
  }

  /// Schedules a raw write at absolute virtual time `at` (the loop is at
  /// t=0 when schedules are installed, so delay == absolute time).
  void write_at(net::Duration at, std::vector<std::uint8_t> bytes) {
    loop_.schedule(at, [this, b = std::move(bytes)] { end_.write(b); });
  }

  /// Schedules a half-close (models a mid-stream TCP reset: the DUT stops
  /// hearing from us and must notice via its hold timer).
  void close_at(net::Duration at) {
    loop_.schedule(at, [this] { end_.close(); });
  }

  [[nodiscard]] const std::vector<std::uint8_t>& received() const { return rx_; }

  /// Parses the recorded byte stream into frames. Returns false (with a
  /// diagnostic in `error`) if the DUT emitted anything unframeable — which
  /// is itself an oracle violation: the DUT must never write garbage.
  [[nodiscard]] bool parse_received(std::vector<RxFrame>& out, std::string& error) const {
    std::size_t off = 0;
    while (off < rx_.size()) {
      std::span<const std::uint8_t> pending(rx_.data() + off, rx_.size() - off);
      auto frame = bgp::try_frame(pending);
      if (!frame.has_value()) {
        error = frame.status().is_incomplete() ? "truncated trailing frame"
                                               : frame.status().message();
        return false;
      }
      RxFrame rf;
      rf.type = frame->type;
      switch (frame->type) {
        case bgp::MessageType::kOpen: {
          auto open = bgp::decode_open(frame->body);
          if (!open.has_value()) { error = "undecodable OPEN from DUT"; return false; }
          rf.open = *open;
          break;
        }
        case bgp::MessageType::kUpdate: {
          bgp::UpdateNotes notes;
          auto update = bgp::decode_update(frame->body, &notes);
          if (!update.has_value() || !notes.clean()) {
            error = "malformed UPDATE from DUT";
            return false;
          }
          rf.update = *update;
          break;
        }
        case bgp::MessageType::kNotification: {
          auto notif = bgp::decode_notification(frame->body);
          if (!notif.has_value()) { error = "truncated NOTIFICATION from DUT"; return false; }
          rf.notification = *notif;
          break;
        }
        case bgp::MessageType::kKeepalive:
          if (!frame->body.empty()) { error = "KEEPALIVE with body from DUT"; return false; }
          break;
        case bgp::MessageType::kRouteRefresh: {
          auto refresh = bgp::decode_route_refresh(frame->body);
          if (!refresh.has_value()) { error = "malformed ROUTE-REFRESH from DUT"; return false; }
          rf.refresh = *refresh;
          break;
        }
      }
      out.push_back(std::move(rf));
      off += frame->total_length;
    }
    return true;
  }

 private:
  net::EventLoop& loop_;
  net::Duplex::End end_;
  std::vector<std::uint8_t> rx_;
};

}  // namespace xb::fuzz
