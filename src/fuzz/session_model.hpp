// Reference model of the DUT-side PeerSession FSM.
//
// The stateful fuzzer generates a raw byte schedule for each chaos peer and
// replays it through this model BEFORE running it against a real router.
// The model mirrors bgp::PeerSession::handle_readable / process_frame
// semantics exactly — including the RFC 7606 tiering decided by the real
// codec (the model calls try_frame/decode_* itself, so expected NOTIFICATION
// (code, subcode) pairs fall out of the shared classification logic rather
// than being hand-predicted) — but has no timers: time-driven outcomes
// (hold-timer expiry) are asserted by the plan generator, which constructs
// schedules that make expiry either guaranteed or impossible, and calls
// expire_hold() on the model accordingly.
//
// This is the first oracle: after the episode runs, the real session's
// final state, its counters and the NOTIFICATION sequence the chaos peer
// recorded must match the model's prediction bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/message.hpp"
#include "bgp/peer_session.hpp"
#include "bgp/types.hpp"

namespace xb::fuzz {

/// One NOTIFICATION the DUT is expected to originate, in order.
struct ExpectedNotification {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;
  friend bool operator==(const ExpectedNotification&, const ExpectedNotification&) = default;
};

/// RFC 4271/7606 validity of a (code, subcode) pair — the "valid
/// NOTIFICATION pair" half of the no-silent-acceptance oracle.
[[nodiscard]] bool valid_notification_pair(std::uint8_t code, std::uint8_t subcode);

class SessionModel {
 public:
  /// Mirrors the DUT-side PeerSession::Config fields that affect semantics.
  struct Config {
    bgp::Asn local_asn = 0;    // the DUT's ASN
    bgp::Asn peer_asn = 0;     // what the DUT expects the chaos peer to be
    bgp::RouterId local_id = 0;
    std::uint16_t hold_time = 90;
  };

  explicit SessionModel(Config config) : config_(config) {}

  /// Mirrors PeerSession::start(): DUT sends OPEN, enters OpenSent.
  void start();

  /// Mirrors one on_readable delivery of `chunk` from the chaos peer.
  void deliver(std::span<const std::uint8_t> chunk);

  /// Applies a generator-guaranteed hold-timer expiry (no-op when already
  /// Idle or when the negotiated hold time is zero).
  void expire_hold();

  [[nodiscard]] bgp::SessionState state() const { return state_; }
  [[nodiscard]] std::uint16_t negotiated_hold() const { return config_.hold_time; }
  [[nodiscard]] std::uint64_t updates_received() const { return updates_received_; }
  [[nodiscard]] std::uint64_t treat_as_withdraw() const { return treat_as_withdraw_; }
  [[nodiscard]] std::uint64_t attrs_discarded() const { return attrs_discarded_; }
  [[nodiscard]] std::uint64_t notifications_sent() const { return notifications_sent_; }
  [[nodiscard]] const std::vector<ExpectedNotification>& notifications() const {
    return notifications_;
  }

 private:
  void process_frame(const bgp::Frame& frame);
  void handle_open(const bgp::OpenMessage& open);
  void handle_keepalive();
  void fail(bgp::NotifCode code, std::uint8_t subcode);
  void go_down();

  Config config_;
  bgp::SessionState state_ = bgp::SessionState::kIdle;
  std::vector<std::uint8_t> rx_buffer_;
  std::size_t rx_consumed_ = 0;
  std::uint64_t updates_received_ = 0;
  std::uint64_t treat_as_withdraw_ = 0;
  std::uint64_t attrs_discarded_ = 0;
  std::uint64_t notifications_sent_ = 0;
  std::vector<ExpectedNotification> notifications_;
};

}  // namespace xb::fuzz
