// Stateful session/config fuzzer: plan generation and episode execution.
//
// One EPISODE = one randomly configured router (parallelism, policies,
// extension manifest mix, hold/keepalive times, link latency, 2-4 peers)
// plus one randomly generated raw-wire SCHEDULE per peer (handshakes, UPDATE
// churn, malformed frames, NOTIFICATIONs, duplicate/early messages,
// mid-stream closes, silences that force hold-timer expiry). The plan is a
// pure function of a 64-bit seed, so any failure replays from one number.
//
// The schedule generator enforces the timing discipline the DUT's hold
// timer imposes (see make_plan in stateful.cpp): every inter-event gap on a
// surviving peer stays under half the negotiated hold time, and peers meant
// to expire go silent long enough that expiry is guaranteed, never racy.
// That is what lets a timer-free reference model (SessionModel) predict the
// exact final state, counters and NOTIFICATION sequence of every session.
//
// Three oracles judge each episode:
//   1. no-silent-acceptance — per peer, the real session's final state, its
//      RFC 7606 counters and the NOTIFICATION (code, subcode) sequence the
//      chaos peer recorded must equal the model's prediction, and every
//      pair must be RFC-valid;
//   2. differential parity — the same plan run on Fir and Wren must leave
//      identical snapshots (RIBs normalised via Core::to_wire, decoded
//      frame sequences, engine stats): diff_snapshots();
//   3. telemetry budgets — extension fault classes all zero, engine and
//      session counters monotonic between mid-run and end-of-run readings.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bgp/peer_session.hpp"
#include "bgp/policy.hpp"
#include "extensions/geoloc.hpp"
#include "extensions/igp_filter.hpp"
#include "extensions/origin_validation.hpp"
#include "extensions/route_reflection.hpp"
#include "extensions/valley_free.hpp"
#include "fuzz/chaos_peer.hpp"
#include "fuzz/session_model.hpp"
#include "harness/workload.hpp"
#include "hosts/engine/router.hpp"
#include "net/channel.hpp"
#include "net/event_loop.hpp"
#include "rpki/roa.hpp"
#include "xbgp/manifest.hpp"

namespace xb::fuzz {

/// One scripted action from a chaos peer: a raw write, or a half-close
/// (mid-stream TCP reset — the DUT must notice via its hold timer).
struct WireEvent {
  net::Duration at = 0;
  std::vector<std::uint8_t> bytes;
  bool close = false;
};

/// A chaos peer's schedule plus the reference model's prediction of the
/// DUT-side session outcome.
struct PeerPlan {
  std::string name;
  bgp::Asn asn = 0;
  util::Ipv4Addr address;
  bool rr_client = false;
  std::vector<WireEvent> events;
  bool expect_hold_expiry = false;
  // SessionModel prediction (filled by make_plan):
  bgp::SessionState final_state = bgp::SessionState::kIdle;
  std::uint64_t updates_received = 0;
  std::uint64_t treat_as_withdraw = 0;
  std::uint64_t attrs_discarded = 0;
  std::uint64_t notifications_sent = 0;
  std::vector<ExpectedNotification> notifications;
};

/// Extension-manifest mix bits (plan.manifest_mask).
namespace manifest_bit {
inline constexpr std::uint32_t kRouteReflection = 1u << 0;
inline constexpr std::uint32_t kOriginValidation = 1u << 1;
inline constexpr std::uint32_t kGeoLoc = 1u << 2;
inline constexpr std::uint32_t kValleyFree = 1u << 3;
inline constexpr std::uint32_t kIgpFilter = 1u << 4;
}  // namespace manifest_bit

/// A host-independent episode description: the same plan runs against Fir
/// and Wren, which is what makes oracle 2 meaningful.
struct EpisodePlan {
  std::uint64_t seed = 0;
  std::size_t parallelism = 1;
  std::uint16_t hold = 6;          // DUT's proposed hold time, seconds
  std::uint32_t keepalive = 2;     // DUT's keepalive interval, seconds
  net::Duration latency = 0;       // link latency, ns
  bool native_rr = false;
  bool use_policies = false;
  std::uint32_t manifest_mask = 0;
  bgp::Asn dut_asn = 65000;
  bgp::RouterId dut_id = 0x0A000001;
  util::Ipv4Addr dut_addr;
  std::vector<rpki::Roa> roas;
  std::vector<PeerPlan> peers;
  net::TimePoint deadline = 0;
  // Soak-gate validation: deliver one corrupt frame the model never saw, so
  // oracle 1 MUST flag the run. Set by PlanOptions, never by the seed.
  bool inject_unmodeled_fault = false;
  std::size_t fault_peer = 0;
  net::Duration fault_at = 0;
};

struct PlanOptions {
  std::size_t force_parallelism = 0;  // 0 = let the seed pick
  bool inject_unmodeled_fault = false;
};

[[nodiscard]] EpisodePlan make_plan(std::uint64_t seed, const PlanOptions& opt = {});

/// Everything observable after an episode, host-normalised.
struct PeerOutcome {
  int final_state = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t treat_as_withdraw = 0;
  std::uint64_t attrs_discarded = 0;
  std::uint64_t notifications_sent = 0;
  std::vector<RxFrame> rx;  // decoded DUT output, in order
  std::vector<std::pair<util::Prefix, bgp::AttributeSet>> adj_in;
  std::vector<std::pair<util::Prefix, bgp::AttributeSet>> adj_out;
};

struct EpisodeSnapshot {
  std::vector<PeerOutcome> peers;
  std::vector<std::pair<util::Prefix, bgp::AttributeSet>> loc_rib;
  hosts::engine::RouterStats stats;
  /// Oracle 1 + 3 findings for this host run; empty on a clean episode.
  std::vector<std::string> violations;
};

/// Oracle 2: field-by-field comparison of two host runs of the same plan.
[[nodiscard]] std::vector<std::string> diff_snapshots(const EpisodeSnapshot& fir,
                                                      const EpisodeSnapshot& wren);

namespace detail {

[[nodiscard]] std::vector<std::string> check_peer_outcome(const EpisodePlan& plan,
                                                          std::size_t peer,
                                                          const PeerOutcome& outcome);

/// Fieldwise `end >= mid` check over two engine-stat readings (oracle 3).
[[nodiscard]] std::vector<std::string> check_monotonic(const hosts::engine::RouterStats& mid,
                                                       const hosts::engine::RouterStats& end);

}  // namespace detail

/// Runs one episode against Router<Core> and applies oracles 1 and 3; the
/// caller applies oracle 2 by diffing the Fir and Wren snapshots.
template <typename Core>
EpisodeSnapshot run_episode(const EpisodePlan& plan) {
  using RouterT = hosts::engine::Router<Core>;
  net::EventLoop loop;
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = plan.dut_id;
  cfg.address = plan.dut_addr;
  cfg.parallelism = plan.parallelism;
  cfg.native_route_reflector = plan.native_rr;
  cfg.hold_time = plan.hold;
  cfg.keepalive_interval = plan.keepalive;
  std::optional<bgp::policy::RouteMap> import_policy, export_policy;
  if (plan.use_policies) {
    import_policy.emplace(bgp::policy::standard_import_policy());
    export_policy.emplace(bgp::policy::standard_export_policy());
    cfg.import_policy = &*import_policy;
    cfg.export_policy = &*export_policy;
  }
  RouterT dut(loop, cfg);

  // Every extension's config blob is always present, whatever manifest
  // subset the seed drew: the fault-class budget for a well-configured
  // router is zero, and that is exactly what oracle 3 asserts.
  dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(plan.roas));
  {
    std::vector<std::uint8_t> coords(8);
    const std::int32_t lat = 50'000'000, lon = 4'000'000;
    std::memcpy(coords.data(), &lat, 4);
    std::memcpy(coords.data() + 4, &lon, 4);
    dut.set_xtra(xbgp::xtra::kGeoCoord, coords);
  }
  dut.set_xtra_u32(xbgp::xtra::kGeoMaxDist, 1'000'000'000u);
  dut.set_xtra_u32(xbgp::xtra::kMaxMetric, 1u << 20);
  {
    std::vector<xbgp::ValleyPair> pairs;
    for (const auto& pp : plan.peers)
      if (pp.asn != plan.dut_asn) pairs.push_back({pp.asn, plan.dut_asn});
    std::vector<std::uint8_t> blob(pairs.size() * sizeof(xbgp::ValleyPair));
    if (!blob.empty()) std::memcpy(blob.data(), pairs.data(), blob.size());
    dut.set_xtra(xbgp::xtra::kValleyPairs, blob);
  }
  {
    xbgp::Manifest manifest;
    auto merge = [&manifest](xbgp::Manifest m) {
      for (auto& entry : m.entries) manifest.entries.push_back(std::move(entry));
    };
    if (plan.manifest_mask & manifest_bit::kRouteReflection)
      merge(ext::route_reflection_manifest());
    if (plan.manifest_mask & manifest_bit::kOriginValidation)
      merge(ext::origin_validation_manifest(plan.roas.size()));
    if (plan.manifest_mask & manifest_bit::kGeoLoc)
      merge(ext::geoloc_manifest(/*with_distance_filter=*/true));
    if (plan.manifest_mask & manifest_bit::kValleyFree) merge(ext::valley_free_manifest());
    if (plan.manifest_mask & manifest_bit::kIgpFilter) merge(ext::igp_filter_manifest());
    if (!manifest.entries.empty()) dut.load_extensions(manifest);
  }

  std::vector<std::unique_ptr<net::Duplex>> links;
  std::vector<std::unique_ptr<ChaosPeer>> chaos;
  for (const auto& pp : plan.peers) {
    links.push_back(std::make_unique<net::Duplex>(loop, plan.latency));
    typename RouterT::PeerConfig pc;
    pc.name = pp.name;
    pc.asn = pp.asn;
    pc.address = pp.address;
    pc.rr_client = pp.rr_client;
    dut.add_peer(links.back()->a(), pc);
    chaos.push_back(std::make_unique<ChaosPeer>(loop, links.back()->b()));
    for (const auto& ev : pp.events) {
      if (ev.close)
        chaos.back()->close_at(ev.at);
      else
        chaos.back()->write_at(ev.at, ev.bytes);
    }
  }
  if (plan.inject_unmodeled_fault && plan.fault_peer < chaos.size())
    chaos[plan.fault_peer]->write_at(plan.fault_at,
                                     std::vector<std::uint8_t>(bgp::kHeaderSize, 0x00));

  dut.start();

  // Two readings bracket the second half of the run for the monotonicity
  // half of oracle 3.
  loop.run_until(plan.deadline / 2);
  const hosts::engine::RouterStats mid_stats = dut.stats();
  std::vector<std::array<std::uint64_t, 5>> mid_sess;
  for (std::size_t i = 0; i < plan.peers.size(); ++i) {
    auto& s = dut.session(i);
    mid_sess.push_back({s.updates_received(), s.updates_sent(), s.treat_as_withdraw_count(),
                        s.attrs_discarded(), s.notifications_sent()});
  }
  loop.run_until(plan.deadline);

  EpisodeSnapshot snap;
  snap.stats = dut.stats();
  for (auto finding : detail::check_monotonic(mid_stats, snap.stats))
    snap.violations.push_back(std::move(finding));
  for (const auto& prefix : dut.loc_rib_prefixes())
    snap.loc_rib.emplace_back(prefix, Core::to_wire(*dut.best(prefix)->attrs));

  for (std::size_t i = 0; i < plan.peers.size(); ++i) {
    auto& s = dut.session(i);
    PeerOutcome out;
    out.final_state = static_cast<int>(s.state());
    out.updates_received = s.updates_received();
    out.updates_sent = s.updates_sent();
    out.treat_as_withdraw = s.treat_as_withdraw_count();
    out.attrs_discarded = s.attrs_discarded();
    out.notifications_sent = s.notifications_sent();
    const std::array<std::uint64_t, 5> end_sess{out.updates_received, out.updates_sent,
                                                out.treat_as_withdraw, out.attrs_discarded,
                                                out.notifications_sent};
    for (std::size_t c = 0; c < end_sess.size(); ++c) {
      if (end_sess[c] < mid_sess[i][c])
        snap.violations.push_back("seed " + std::to_string(plan.seed) + " peer " +
                                  std::to_string(i) + ": session counter " +
                                  std::to_string(c) + " went backwards");
    }
    std::string parse_error;
    if (!chaos[i]->parse_received(out.rx, parse_error))
      snap.violations.push_back("seed " + std::to_string(plan.seed) + " peer " +
                                std::to_string(i) + ": DUT wrote undecodable bytes: " +
                                parse_error);
    for (const auto& prefix : dut.adj_rib_in_prefixes(i))
      out.adj_in.emplace_back(prefix, Core::to_wire(**dut.adj_rib_in_lookup(i, prefix)));
    for (const auto& prefix : dut.adj_rib_out_prefixes(i))
      out.adj_out.emplace_back(prefix, Core::to_wire(**dut.adj_rib_out_lookup(i, prefix)));
    for (auto finding : detail::check_peer_outcome(plan, i, out))
      snap.violations.push_back(std::move(finding));
    snap.peers.push_back(std::move(out));
  }
  if (snap.stats.extension_faults != 0)
    snap.violations.push_back("seed " + std::to_string(plan.seed) +
                              ": extension fault budget exceeded (" +
                              std::to_string(snap.stats.extension_faults) + " != 0)");
  return snap;
}

}  // namespace xb::fuzz
