#include "fuzz/session_model.hpp"

#include "bgp/codec.hpp"

namespace xb::fuzz {

using bgp::MessageType;
using bgp::NotifCode;
using bgp::SessionState;

bool valid_notification_pair(std::uint8_t code, std::uint8_t subcode) {
  switch (code) {
    case 1: return subcode >= 1 && subcode <= 3;   // Message Header Error
    case 2: return subcode <= 7;                   // OPEN Message Error
    case 3: return subcode <= 11;                  // UPDATE Message Error
    case 4: return subcode == 0;                   // Hold Timer Expired
    case 5: return subcode == 0;                   // FSM Error
    case 6: return subcode <= 8;                   // Cease
    default: return false;
  }
}

void SessionModel::start() {
  if (state_ != SessionState::kIdle) return;
  state_ = SessionState::kOpenSent;
}

void SessionModel::deliver(std::span<const std::uint8_t> chunk) {
  rx_buffer_.insert(rx_buffer_.end(), chunk.begin(), chunk.end());
  while (true) {
    std::span<const std::uint8_t> pending(rx_buffer_.data() + rx_consumed_,
                                          rx_buffer_.size() - rx_consumed_);
    auto frame = bgp::try_frame(pending);
    if (!frame.has_value()) {
      if (frame.status().is_incomplete()) break;
      fail(static_cast<NotifCode>(frame.status().code()), frame.status().subcode());
      return;
    }
    process_frame(*frame);
    if (state_ == SessionState::kIdle) return;  // torn down while processing
    rx_consumed_ += frame->total_length;
  }
  if (rx_consumed_ > 0 && rx_consumed_ * 2 >= rx_buffer_.size()) {
    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() + static_cast<std::ptrdiff_t>(rx_consumed_));
    rx_consumed_ = 0;
  }
}

void SessionModel::expire_hold() {
  if (state_ == SessionState::kIdle || config_.hold_time == 0) return;
  fail(NotifCode::kHoldTimerExpired, 0);
}

void SessionModel::process_frame(const bgp::Frame& frame) {
  switch (frame.type) {
    case MessageType::kOpen: {
      auto open = bgp::decode_open(frame.body);
      if (!open.has_value()) {
        fail(static_cast<NotifCode>(open.status().code()), open.status().subcode());
        return;
      }
      handle_open(*open);
      return;
    }
    case MessageType::kKeepalive:
      handle_keepalive();
      return;
    case MessageType::kUpdate: {
      if (state_ != SessionState::kEstablished) {
        fail(NotifCode::kFsmError, 0);
        return;
      }
      bgp::UpdateNotes notes;
      auto update = bgp::decode_update(frame.body, &notes);
      if (!update.has_value()) {
        fail(static_cast<NotifCode>(update.status().code()), update.status().subcode());
        return;
      }
      if (notes.worst == util::ErrorClass::kTreatAsWithdraw) ++treat_as_withdraw_;
      attrs_discarded_ += notes.attrs_discarded;
      ++updates_received_;
      return;
    }
    case MessageType::kNotification: {
      // Both the decodable and the truncated NOTIFICATION tear the session
      // down silently: the peer already knows why.
      go_down();
      return;
    }
    case MessageType::kRouteRefresh: {
      if (state_ != SessionState::kEstablished) {
        fail(NotifCode::kFsmError, 0);
        return;
      }
      auto refresh = bgp::decode_route_refresh(frame.body);
      if (!refresh.has_value()) {
        fail(static_cast<NotifCode>(refresh.status().code()), refresh.status().subcode());
        return;
      }
      return;
    }
  }
}

void SessionModel::handle_open(const bgp::OpenMessage& open) {
  if (state_ != SessionState::kOpenSent) {
    fail(NotifCode::kFsmError, 0);
    return;
  }
  if (open.asn != config_.peer_asn) {
    fail(NotifCode::kOpenMessageError, 2);
    return;
  }
  if (open.bgp_id == 0 || open.bgp_id == config_.local_id) {
    fail(NotifCode::kOpenMessageError, 3);
    return;
  }
  if (open.hold_time < config_.hold_time) config_.hold_time = open.hold_time;
  state_ = SessionState::kOpenConfirm;
}

void SessionModel::handle_keepalive() {
  switch (state_) {
    case SessionState::kOpenConfirm:
      state_ = SessionState::kEstablished;
      return;
    case SessionState::kEstablished:
      return;
    default:
      fail(NotifCode::kFsmError, 0);
  }
}

void SessionModel::fail(NotifCode code, std::uint8_t subcode) {
  notifications_.push_back({static_cast<std::uint8_t>(code), subcode});
  ++notifications_sent_;
  go_down();
}

void SessionModel::go_down() { state_ = SessionState::kIdle; }

}  // namespace xb::fuzz
