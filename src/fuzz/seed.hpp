// Deterministic seed plumbing shared by every fuzzing entry point.
//
// A fuzz run is only useful if a failure replays: each suite announces the
// seed it runs with and accepts a replacement from the environment, so any
// CI failure becomes a one-line repro:
//
//   XBGP_FUZZ_SEED=<printed seed> ./build/tests/stateful_fuzz_test
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace xb::fuzz {

/// Reads `var` as a decimal or 0x-prefixed integer seed; falls back to
/// `fallback` when the variable is unset, empty or unparseable.
inline std::uint64_t env_seed(std::uint64_t fallback, const char* var = "XBGP_FUZZ_SEED") {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 0);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

/// Reads a positive integer knob (episode counts, time budgets) from `var`.
inline std::uint64_t env_u64(const char* var, std::uint64_t fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 0);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

/// Prints the effective seed in replay form. `what` names the suite.
inline void announce_seed(const char* what, std::uint64_t seed) {
  std::printf("[%s] seed=%llu  (replay: XBGP_FUZZ_SEED=%llu)\n", what,
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
}

}  // namespace xb::fuzz
