#include "fuzz/stateful.hpp"

#include <algorithm>
#include <iterator>

#include "bgp/aspath.hpp"
#include "bgp/attr.hpp"
#include "bgp/codec.hpp"
#include "rpki/loader.hpp"
#include "util/rng.hpp"

namespace xb::fuzz {

namespace {

using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kMs = 1'000'000ull;
constexpr std::uint64_t kSec = 1'000'000'000ull;

// Peer behaviour classes. Everything except kBadOpen/kEarlyFrame completes a
// clean handshake and runs UPDATE/KEEPALIVE/ROUTE-REFRESH churn first.
enum PeerClass : int {
  kStay = 0,        // behaves to the end (keepalive fill keeps it alive)
  kSilence = 1,     // stops talking -> DUT hold-timer expiry
  kReset = 2,       // mid-stream close -> silence -> hold-timer expiry
  kNotifyDut = 3,   // sends a NOTIFICATION -> DUT goes down silently
  kGarbage = 4,     // sends an unframeable/undecodable message -> session reset
  kBadOpen = 5,     // OPEN the DUT must refuse (ASN/id mismatch, truncation)
  kEarlyFrame = 6,  // KEEPALIVE/UPDATE/REFRESH before the FSM allows it
  kDupOpen = 7,     // second OPEN after Established -> FSM error
  kTruncNotif = 8,  // truncated NOTIFICATION -> silent teardown
};

/// Hand-crafts a frame with full control over marker, declared length and
/// type — the malformed-header space encode_*() can never produce.
std::vector<std::uint8_t> raw_frame(std::uint8_t marker_byte, std::uint16_t declared_length,
                                    std::uint8_t type, std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out(16, marker_byte);
  out.push_back(static_cast<std::uint8_t>(declared_length >> 8));
  out.push_back(static_cast<std::uint8_t>(declared_length & 0xFF));
  out.push_back(type);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

EpisodePlan make_plan(std::uint64_t seed, const PlanOptions& opt) {
  util::Rng rng(seed);
  EpisodePlan plan;
  plan.seed = seed;
  static constexpr std::size_t kParallelism[] = {1, 1, 1, 2, 2, 4, 8, 8};
  plan.parallelism =
      opt.force_parallelism != 0 ? opt.force_parallelism : kParallelism[rng.below(8)];
  plan.hold = static_cast<std::uint16_t>(rng.between(4, 12));
  plan.keepalive = static_cast<std::uint32_t>(rng.between(1, 3));
  plan.latency = rng.below(2001);
  plan.native_rr = rng.chance(0.25);
  plan.use_policies = rng.chance(0.4);
  plan.manifest_mask = static_cast<std::uint32_t>(rng.below(32));
  plan.dut_addr = Ipv4Addr(10, 0, 0, 1);
  plan.inject_unmodeled_fault = opt.inject_unmodeled_fault;

  // A shared prefix pool plus a ROA set over it (75% valid, the paper's
  // §3.4 split), so an origin-validation manifest always has data.
  const std::size_t pool_size = rng.between(8, 48);
  std::vector<Prefix> pool;
  std::vector<rpki::AnnouncedRoute> announced;
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.emplace_back(Ipv4Addr(10, 50, static_cast<std::uint8_t>(i), 0), 24);
    announced.push_back({pool.back(), static_cast<bgp::Asn>(64500 + rng.below(8))});
  }
  rpki::RoaSetParams roa_params;
  roa_params.seed = seed * 0x9E3779B97F4A7C15ull + 1;
  plan.roas = rpki::make_roa_set(announced, roa_params);

  auto pick_prefixes = [&] {
    std::vector<Prefix> out;
    const std::size_t n = 1 + rng.below(3);
    for (std::size_t i = 0; i < n; ++i) out.push_back(pool[rng.below(pool.size())]);
    return out;
  };
  auto build_announce = [&](bgp::Asn peer_asn, Ipv4Addr peer_addr, bool ibgp) {
    bgp::UpdateMessage u;
    u.attrs.put(bgp::make_origin(static_cast<bgp::Origin>(rng.below(3))));
    std::vector<bgp::Asn> path;
    if (!ibgp) path.push_back(peer_asn);
    const std::size_t hops = rng.below(4);
    for (std::size_t h = 0; h < hops; ++h)
      path.push_back(static_cast<bgp::Asn>(64500 + rng.below(50)));
    if (rng.chance(0.05)) path.push_back(plan.dut_asn);  // feeds loop prevention
    u.attrs.put(bgp::AsPath(std::move(path)).to_attr());
    u.attrs.put(bgp::make_next_hop(peer_addr));
    if (ibgp && rng.chance(0.6))
      u.attrs.put(bgp::make_local_pref(static_cast<std::uint32_t>(rng.between(50, 200))));
    if (rng.chance(0.3)) u.attrs.put(bgp::make_med(static_cast<std::uint32_t>(rng.below(1000))));
    if (rng.chance(0.3)) {
      std::vector<std::uint32_t> communities;
      const std::size_t n = 1 + rng.below(3);
      for (std::size_t i = 0; i < n; ++i)
        communities.push_back((65000u << 16) | static_cast<std::uint32_t>(rng.below(100)));
      u.attrs.put(bgp::make_communities(communities));
    }
    if (rng.chance(0.2))
      u.attrs.put(bgp::make_geoloc(
          static_cast<std::int32_t>(rng.below(180'000'001)) - 90'000'000,
          static_cast<std::int32_t>(rng.below(360'000'001)) - 180'000'000));
    u.nlri = pick_prefixes();
    return u;
  };
  auto build_withdraw = [&] {
    bgp::UpdateMessage u;
    u.withdrawn = pick_prefixes();
    return u;
  };

  const std::size_t n_peers = rng.between(2, 4);
  static constexpr int kClassDraw[] = {kStay,      kStay,    kStay,       kSilence,
                                       kReset,     kNotifyDut, kGarbage,  kBadOpen,
                                       kEarlyFrame, kDupOpen, kTruncNotif, kStay};
  std::vector<int> classes;
  bool has_stay = false;
  for (std::size_t p = 0; p < n_peers; ++p) {
    classes.push_back(kClassDraw[rng.below(std::size(kClassDraw))]);
    has_stay = has_stay || classes.back() == kStay;
  }
  // The fault-injection victim and the differential oracle both want at
  // least one session that survives the whole episode.
  if (!has_stay) classes[0] = kStay;

  std::vector<std::uint16_t> chaos_holds;
  for (std::size_t p = 0; p < n_peers; ++p) {
    PeerPlan pp;
    pp.name = "chaos" + std::to_string(p);
    const bool ibgp = rng.chance(0.4);
    pp.asn = ibgp ? plan.dut_asn : static_cast<bgp::Asn>(65101 + p);
    pp.address = Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(10 + p));
    pp.rr_client = ibgp && rng.chance(0.5);
    // Lower proposals than the DUT's are common: hold-time mismatch is part
    // of the config space (the DUT must honour min(proposals), RFC 4271).
    const std::uint16_t chaos_hold = static_cast<std::uint16_t>(rng.between(3, 20));
    chaos_holds.push_back(chaos_hold);
    const bgp::RouterId chaos_id = 0x0A01000Au + static_cast<std::uint32_t>(p);
    const std::uint64_t hold_ns =
        static_cast<std::uint64_t>(std::min<std::uint32_t>(plan.hold, chaos_hold)) * kSec;
    const int cls = classes[p];

    // Timing discipline: every gap (including the first, from t=0) stays
    // under 0.45x the negotiated hold time, so no surviving peer can expire
    // by accident; expiry is only ever produced on purpose, by silence.
    net::Duration t = 0;
    auto gap = [&] { return kMs + rng.below(hold_ns * 45 / 100); };
    auto push = [&](std::vector<std::uint8_t> bytes) {
      t += gap();
      pp.events.push_back({t, std::move(bytes), false});
    };
    auto open_bytes = [&](bgp::Asn asn, bgp::RouterId id) {
      bgp::OpenMessage open;
      open.asn = asn;
      open.bgp_id = id;
      open.hold_time = chaos_hold;
      return bgp::encode_open(open);
    };
    auto announce_bytes = [&] {
      return bgp::encode_update(build_announce(pp.asn, pp.address, ibgp));
    };

    if (cls == kBadOpen) {
      switch (rng.below(4)) {
        case 0: push(open_bytes(pp.asn + 1, chaos_id)); break;   // ASN mismatch
        case 1: push(open_bytes(pp.asn, 0)); break;              // zero BGP id
        case 2: push(open_bytes(pp.asn, plan.dut_id)); break;    // colliding BGP id
        default: {
          const std::uint8_t body[] = {4, 0xFD};  // truncated OPEN body
          push(raw_frame(0xFF, 19 + 2, 1, body));
          break;
        }
      }
    } else if (cls == kEarlyFrame) {
      switch (rng.below(4)) {
        case 0: push(bgp::encode_keepalive()); break;                    // before OPEN
        case 1: push(announce_bytes()); break;                           // UPDATE in OpenSent
        case 2: push(bgp::encode_route_refresh({})); break;              // REFRESH in OpenSent
        default:                                                         // UPDATE in OpenConfirm
          push(open_bytes(pp.asn, chaos_id));
          push(announce_bytes());
          break;
      }
    } else {
      push(open_bytes(pp.asn, chaos_id));
      push(bgp::encode_keepalive());
      const std::size_t churn = rng.below(14);
      for (std::size_t c = 0; c < churn; ++c) {
        const std::uint64_t k = rng.below(100);
        if (k < 40) {
          push(announce_bytes());
        } else if (k < 55) {
          push(bgp::encode_update(build_withdraw()));
        } else if (k < 65) {
          // RFC 7606 treat-as-withdraw tier: mandatory ORIGIN with an
          // undefined value.
          auto u = build_announce(pp.asn, pp.address, ibgp);
          u.attrs.put(bgp::WireAttr{bgp::attr_flag::kTransitive, bgp::attr_code::kOrigin, {9}});
          push(bgp::encode_update(u));
        } else if (k < 75) {
          // Attribute-discard tier: optional-transitive GeoLoc one byte short.
          auto u = build_announce(pp.asn, pp.address, ibgp);
          auto geoloc = bgp::make_geoloc(50'000'000, 4'000'000);
          geoloc.value.pop_back();
          u.attrs.put(std::move(geoloc));
          push(bgp::encode_update(u));
        } else if (k < 85) {
          push(bgp::encode_keepalive());
        } else {
          push(bgp::encode_route_refresh({}));
        }
      }
      switch (cls) {
        case kStay:
        case kSilence:
          pp.expect_hold_expiry = (cls == kSilence);
          break;
        case kReset:
          t += gap();
          pp.events.push_back({t, {}, true});
          pp.expect_hold_expiry = true;
          break;
        case kNotifyDut: {
          bgp::NotificationMessage notif;
          notif.code = static_cast<bgp::NotifCode>(rng.between(1, 6));
          notif.subcode = static_cast<std::uint8_t>(rng.below(3));
          if (rng.chance(0.5)) notif.data = {0xDE, 0xAD};
          push(bgp::encode_notification(notif));
          break;
        }
        case kGarbage:
          switch (rng.below(6)) {
            case 0: push(std::vector<std::uint8_t>(bgp::kHeaderSize, 0x00)); break;  // marker
            case 1: push(raw_frame(0xFF, 18, 4, {})); break;    // declared length < 19
            case 2: push(raw_frame(0xFF, 5000, 2, {})); break;  // declared length > 4096
            case 3: push(raw_frame(0xFF, 19, 9, {})); break;    // unknown message type
            case 4: {
              const std::uint8_t body[] = {0xFF, 0xFF};  // structurally broken UPDATE
              push(raw_frame(0xFF, 19 + 2, 2, body));
              break;
            }
            default: {
              const std::uint8_t body[] = {0, 1, 0};  // short ROUTE-REFRESH body
              push(raw_frame(0xFF, 19 + 3, 5, body));
              break;
            }
          }
          break;
        case kDupOpen: push(open_bytes(pp.asn, chaos_id)); break;
        default: {  // kTruncNotif
          const std::uint8_t body[] = {6};
          push(raw_frame(0xFF, 19 + 1, 3, body));
          break;
        }
      }
    }
    plan.peers.push_back(std::move(pp));
  }

  // Deadline: past every scripted event, and far enough past a silent
  // peer's last transmission that the DUT's hold-timer chain (checks at
  // most hold_time apart, each with a captured deadline <= hold_time) has
  // provably fired: T_last + 2*hold covers the worst case.
  net::TimePoint deadline = 0;
  for (const auto& pp : plan.peers)
    for (const auto& ev : pp.events) deadline = std::max(deadline, ev.at);
  deadline += 500 * kMs;
  for (const auto& pp : plan.peers) {
    if (!pp.expect_hold_expiry) continue;
    const net::TimePoint last = pp.events.empty() ? 0 : pp.events.back().at;
    deadline = std::max<net::TimePoint>(deadline, last + 2ull * plan.hold * kSec + 500 * kMs);
  }
  plan.deadline = deadline;

  // Keepalive fill: surviving peers keep transmitting at 0.4x the
  // negotiated hold time until the deadline, so they can never expire.
  for (std::size_t p = 0; p < n_peers; ++p) {
    if (classes[p] != kStay) continue;
    auto& pp = plan.peers[p];
    const std::uint64_t hold_ns =
        static_cast<std::uint64_t>(std::min<std::uint32_t>(plan.hold, chaos_holds[p])) * kSec;
    const net::Duration step = hold_ns * 2 / 5;
    net::Duration t = pp.events.back().at;
    while (t + step <= plan.deadline) {
      t += step;
      pp.events.push_back({t, bgp::encode_keepalive(), false});
    }
  }

  if (plan.inject_unmodeled_fault) {
    for (std::size_t p = 0; p < n_peers; ++p)
      if (classes[p] == kStay) {
        plan.fault_peer = p;
        break;
      }
    plan.fault_at = plan.deadline / 2 + 3 * kMs;
  }

  // Replay every schedule through the reference model to fix the expected
  // outcome (oracle 1). The injected fault is deliberately NOT replayed:
  // its entire point is to make the prediction wrong.
  for (auto& pp : plan.peers) {
    SessionModel model({plan.dut_asn, pp.asn, plan.dut_id, plan.hold});
    model.start();
    for (const auto& ev : pp.events)
      if (!ev.close) model.deliver(ev.bytes);
    if (pp.expect_hold_expiry) model.expire_hold();
    pp.final_state = model.state();
    pp.updates_received = model.updates_received();
    pp.treat_as_withdraw = model.treat_as_withdraw();
    pp.attrs_discarded = model.attrs_discarded();
    pp.notifications_sent = model.notifications_sent();
    pp.notifications = model.notifications();
  }
  return plan;
}

namespace detail {

std::vector<std::string> check_peer_outcome(const EpisodePlan& plan, std::size_t peer,
                                            const PeerOutcome& outcome) {
  const PeerPlan& pp = plan.peers[peer];
  std::vector<std::string> v;
  auto tag = [&](const std::string& what) {
    v.push_back("seed " + std::to_string(plan.seed) + " peer " + std::to_string(peer) + ": " +
                what);
  };
  auto expect_eq = [&](const char* what, std::uint64_t got, std::uint64_t want) {
    if (got != want)
      tag(std::string(what) + " = " + std::to_string(got) + ", model predicts " +
          std::to_string(want));
  };
  expect_eq("final state", static_cast<std::uint64_t>(outcome.final_state),
            static_cast<std::uint64_t>(pp.final_state));
  expect_eq("updates_received", outcome.updates_received, pp.updates_received);
  expect_eq("treat_as_withdraw", outcome.treat_as_withdraw, pp.treat_as_withdraw);
  expect_eq("attrs_discarded", outcome.attrs_discarded, pp.attrs_discarded);
  expect_eq("notifications_sent", outcome.notifications_sent, pp.notifications_sent);

  std::vector<ExpectedNotification> got;
  for (std::size_t i = 0; i < outcome.rx.size(); ++i) {
    const auto& frame = outcome.rx[i];
    if (frame.type != bgp::MessageType::kNotification) continue;
    const auto code = static_cast<std::uint8_t>(frame.notification.code);
    got.push_back({code, frame.notification.subcode});
    if (!valid_notification_pair(code, frame.notification.subcode))
      tag("invalid NOTIFICATION pair (" + std::to_string(code) + ", " +
          std::to_string(frame.notification.subcode) + ")");
    if (i + 1 != outcome.rx.size())
      tag("DUT kept talking after sending a NOTIFICATION");
  }
  if (got != pp.notifications) {
    std::string detail = "NOTIFICATION sequence mismatch: got [";
    for (const auto& n : got)
      detail += "(" + std::to_string(n.code) + "," + std::to_string(n.subcode) + ")";
    detail += "], model predicts [";
    for (const auto& n : pp.notifications)
      detail += "(" + std::to_string(n.code) + "," + std::to_string(n.subcode) + ")";
    detail += "]";
    tag(detail);
  }
  return v;
}

std::vector<std::string> check_monotonic(const hosts::engine::RouterStats& mid,
                                         const hosts::engine::RouterStats& end) {
  std::vector<std::string> v;
  auto chk = [&](const char* name, std::uint64_t m, std::uint64_t e) {
    if (e < m)
      v.push_back(std::string("engine counter ") + name + " went backwards (" +
                  std::to_string(m) + " -> " + std::to_string(e) + ")");
  };
  chk("updates_in", mid.updates_in, end.updates_in);
  chk("updates_out", mid.updates_out, end.updates_out);
  chk("prefixes_in", mid.prefixes_in, end.prefixes_in);
  chk("prefixes_accepted", mid.prefixes_accepted, end.prefixes_accepted);
  chk("prefixes_rejected_in", mid.prefixes_rejected_in, end.prefixes_rejected_in);
  chk("withdrawals_in", mid.withdrawals_in, end.withdrawals_in);
  chk("exports_rejected", mid.exports_rejected, end.exports_rejected);
  chk("loop_rejected", mid.loop_rejected, end.loop_rejected);
  chk("malformed_updates", mid.malformed_updates, end.malformed_updates);
  chk("extension_faults", mid.extension_faults, end.extension_faults);
  chk("ov_valid", mid.ov_valid, end.ov_valid);
  chk("ov_invalid", mid.ov_invalid, end.ov_invalid);
  chk("ov_not_found", mid.ov_not_found, end.ov_not_found);
  chk("treat_as_withdraw", mid.treat_as_withdraw, end.treat_as_withdraw);
  chk("attrs_discarded", mid.attrs_discarded, end.attrs_discarded);
  chk("faults_verify", mid.faults_verify, end.faults_verify);
  chk("faults_budget", mid.faults_budget, end.faults_budget);
  chk("faults_memory_bounds", mid.faults_memory_bounds, end.faults_memory_bounds);
  chk("faults_helper_denied", mid.faults_helper_denied, end.faults_helper_denied);
  chk("faults_helper_error", mid.faults_helper_error, end.faults_helper_error);
  return v;
}

}  // namespace detail

namespace {

void diff_rib(const char* what,
              const std::vector<std::pair<Prefix, bgp::AttributeSet>>& fir,
              const std::vector<std::pair<Prefix, bgp::AttributeSet>>& wren,
              std::vector<std::string>& out) {
  if (fir.size() != wren.size()) {
    out.push_back(std::string(what) + ": table sizes differ (" + std::to_string(fir.size()) +
                  " vs " + std::to_string(wren.size()) + ")");
    return;
  }
  for (std::size_t i = 0; i < fir.size(); ++i) {
    if (!(fir[i].first == wren[i].first)) {
      out.push_back(std::string(what) + "[" + std::to_string(i) + "]: prefix order differs");
      return;
    }
    if (!(fir[i].second == wren[i].second)) {
      out.push_back(std::string(what) + "[" + std::to_string(i) +
                    "]: attributes differ for a prefix");
      return;
    }
  }
}

}  // namespace

std::vector<std::string> diff_snapshots(const EpisodeSnapshot& fir,
                                        const EpisodeSnapshot& wren) {
  std::vector<std::string> v;
  if (fir.peers.size() != wren.peers.size()) {
    v.push_back("peer counts differ");
    return v;
  }
  for (std::size_t i = 0; i < fir.peers.size(); ++i) {
    const auto& f = fir.peers[i];
    const auto& w = wren.peers[i];
    const std::string who = "peer " + std::to_string(i);
    auto chk = [&](const char* name, std::uint64_t a, std::uint64_t b) {
      if (a != b)
        v.push_back(who + ": " + name + " differs (" + std::to_string(a) + " vs " +
                    std::to_string(b) + ")");
    };
    chk("final state", static_cast<std::uint64_t>(f.final_state),
        static_cast<std::uint64_t>(w.final_state));
    chk("updates_received", f.updates_received, w.updates_received);
    chk("updates_sent", f.updates_sent, w.updates_sent);
    chk("treat_as_withdraw", f.treat_as_withdraw, w.treat_as_withdraw);
    chk("attrs_discarded", f.attrs_discarded, w.attrs_discarded);
    chk("notifications_sent", f.notifications_sent, w.notifications_sent);
    if (!(f.rx == w.rx)) v.push_back(who + ": decoded DUT output streams differ");
    diff_rib((who + ": Adj-RIB-In").c_str(), f.adj_in, w.adj_in, v);
    diff_rib((who + ": Adj-RIB-Out").c_str(), f.adj_out, w.adj_out, v);
  }
  diff_rib("Loc-RIB", fir.loc_rib, wren.loc_rib, v);
  auto chk = [&](const char* name, std::uint64_t a, std::uint64_t b) {
    if (a != b)
      v.push_back(std::string("stats.") + name + " differs (" + std::to_string(a) + " vs " +
                  std::to_string(b) + ")");
  };
  chk("updates_in", fir.stats.updates_in, wren.stats.updates_in);
  chk("updates_out", fir.stats.updates_out, wren.stats.updates_out);
  chk("prefixes_in", fir.stats.prefixes_in, wren.stats.prefixes_in);
  chk("prefixes_accepted", fir.stats.prefixes_accepted, wren.stats.prefixes_accepted);
  chk("prefixes_rejected_in", fir.stats.prefixes_rejected_in, wren.stats.prefixes_rejected_in);
  chk("withdrawals_in", fir.stats.withdrawals_in, wren.stats.withdrawals_in);
  chk("exports_rejected", fir.stats.exports_rejected, wren.stats.exports_rejected);
  chk("loop_rejected", fir.stats.loop_rejected, wren.stats.loop_rejected);
  chk("malformed_updates", fir.stats.malformed_updates, wren.stats.malformed_updates);
  chk("extension_faults", fir.stats.extension_faults, wren.stats.extension_faults);
  chk("ov_valid", fir.stats.ov_valid, wren.stats.ov_valid);
  chk("ov_invalid", fir.stats.ov_invalid, wren.stats.ov_invalid);
  chk("ov_not_found", fir.stats.ov_not_found, wren.stats.ov_not_found);
  chk("treat_as_withdraw", fir.stats.treat_as_withdraw, wren.stats.treat_as_withdraw);
  chk("attrs_discarded", fir.stats.attrs_discarded, wren.stats.attrs_discarded);
  return v;
}

}  // namespace xb::fuzz
