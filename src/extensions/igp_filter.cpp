#include "extensions/igp_filter.hpp"

#include "extensions/common.hpp"

namespace xb::ext {

using namespace xbgp;

ebpf::Program igp_filter_program() {
  Assembler a;
  auto yield = a.make_label();

  // r6 = MAX_METRIC from config; unconfigured -> do not filter.
  emit_get_xtra(a, -16, xtra::kMaxMetric);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R6, Reg::R0, 0);

  // peer = get_peer_info(); iBGP sessions are not filtered.
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, yield);
  a.ldxb(Reg::R7, Reg::R0, kPeerType);
  a.jne(Reg::R7, kPeerTypeEbgp, yield);

  // nexthop = get_nexthop(); accept when the metric is within bounds.
  a.call(helper::kGetNexthop);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R8, Reg::R0, kNexthopIgpMetric);
  a.jle(Reg::R8, Reg::R6, yield);

  // Metric too large: reject the route.
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterReject));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("igp_filter");
}

xbgp::Manifest igp_filter_manifest() {
  Manifest m;
  m.attach("igp_filter", Op::kOutboundFilter, igp_filter_program());
  return m;
}

}  // namespace xb::ext
