#include "extensions/valley_free.hpp"

#include "bgp/types.hpp"
#include "extensions/common.hpp"

namespace xb::ext {

using namespace xbgp;

ebpf::Program valley_free_program() {
  Assembler a;
  auto yield = a.make_label();
  auto reject = a.make_label();

  // Stack layout: [-16..] xtra key scratch, [-40] pairs base, [-48] pairs
  // end, [-56] previous ASN, [-64] previous-ASN-valid flag.
  constexpr std::int16_t kPairsBase = -40;
  constexpr std::int16_t kPairsEnd = -48;
  constexpr std::int16_t kPrevAsn = -56;
  constexpr std::int16_t kPrevValid = -64;

  // Valley-freedom is an eBGP concept (DC fabrics run eBGP between levels).
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, yield);
  a.ldxb(Reg::R1, Reg::R0, kPeerType);
  a.jne(Reg::R1, kPeerTypeEbgp, yield);
  a.ldxw(Reg::R6, Reg::R0, kPeerAsn);       // sending peer's AS
  a.ldxw(Reg::R7, Reg::R0, kPeerLocalAsn);  // our AS

  // Load the level-pair manifest.
  emit_get_xtra(a, -16, xtra::kValleyPairs);
  a.jeq(Reg::R0, 0, yield);
  a.stxdw(Reg::R10, kPairsBase, Reg::R0);
  emit_get_xtra_len(a, -16, xtra::kValleyPairs);
  a.ldxdw(Reg::R1, Reg::R10, kPairsBase);
  a.add64(Reg::R0, Reg::R1);
  a.stxdw(Reg::R10, kPairsEnd, Reg::R0);

  // Ascent check: is (peer AS, our AS) a manifest pair? If not, the route is
  // arriving from above (descent) and this filter does not apply.
  {
    auto loop = a.make_label();
    auto advance = a.make_label();
    auto ascent = a.make_label();
    a.ldxdw(Reg::R8, Reg::R10, kPairsBase);
    a.ldxdw(Reg::R9, Reg::R10, kPairsEnd);
    a.place(loop);
    a.jge(Reg::R8, Reg::R9, yield);  // exhausted: not an ascent session
    a.ldxw(Reg::R1, Reg::R8, 0);     // ValleyPair::lower_asn
    a.jne(Reg::R1, Reg::R6, advance);
    a.ldxw(Reg::R2, Reg::R8, 4);     // ValleyPair::upper_asn
    a.jeq(Reg::R2, Reg::R7, ascent);
    a.place(advance);
    a.add64(Reg::R8, 8);
    a.ja(loop);
    a.place(ascent);
  }

  // Walk the AS_PATH; any consecutive (lower, upper) manifest pair means the
  // path already went down once -> valley.
  a.mov64(Reg::R1, bgp::attr_code::kAsPath);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, yield);
  a.mov64(Reg::R6, Reg::R0);
  a.add64(Reg::R6, kAttrData);     // r6 = cursor
  a.ldxh(Reg::R7, Reg::R0, kAttrLen);
  a.add64(Reg::R7, Reg::R6);       // r7 = end
  a.stdw(Reg::R10, kPrevValid, 0);

  {
    auto seg_loop = a.make_label();
    auto seg_sequence = a.make_label();
    auto member_loop = a.make_label();
    auto member_next = a.make_label();
    auto pair_scan_done = a.make_label();

    a.place(seg_loop);
    a.mov64(Reg::R1, Reg::R6);
    a.add64(Reg::R1, 2);
    a.jgt(Reg::R1, Reg::R7, yield);  // path exhausted without a valley
    a.ldxb(Reg::R2, Reg::R6, 0);     // segment type
    a.ldxb(Reg::R8, Reg::R6, 1);     // member count
    a.add64(Reg::R6, 2);
    a.jeq(Reg::R2, 2, seg_sequence);
    // AS_SET: adjacency through a set is undefined; reset and skip it.
    a.stdw(Reg::R10, kPrevValid, 0);
    a.lsh64(Reg::R8, 2);
    a.add64(Reg::R6, Reg::R8);
    a.ja(seg_loop);

    a.place(seg_sequence);
    a.place(member_loop);
    a.jeq(Reg::R8, 0, seg_loop);  // segment exhausted
    a.mov64(Reg::R1, Reg::R6);
    a.add64(Reg::R1, 4);
    a.jgt(Reg::R1, Reg::R7, yield);  // malformed count: stop scanning
    a.ldxw(Reg::R9, Reg::R6, 0);
    a.to_be(Reg::R9, 32);         // current ASN, host value

    // If there is a previous ASN, scan the manifest for (prev, current).
    {
      auto no_prev = a.make_label();
      auto pair_loop = a.make_label();
      auto pair_next = a.make_label();
      a.ldxdw(Reg::R1, Reg::R10, kPrevValid);
      a.jeq(Reg::R1, 0, no_prev);
      a.ldxdw(Reg::R2, Reg::R10, kPrevAsn);
      a.ldxdw(Reg::R3, Reg::R10, kPairsBase);
      a.ldxdw(Reg::R4, Reg::R10, kPairsEnd);
      a.place(pair_loop);
      a.jge(Reg::R3, Reg::R4, pair_scan_done);
      a.ldxw(Reg::R5, Reg::R3, 0);  // lower
      a.jne(Reg::R5, Reg::R2, pair_next);
      a.ldxw(Reg::R5, Reg::R3, 4);  // upper
      a.jeq(Reg::R5, Reg::R9, reject);
      a.place(pair_next);
      a.add64(Reg::R3, 8);
      a.ja(pair_loop);
      a.place(no_prev);
    }
    a.place(pair_scan_done);

    a.stxdw(Reg::R10, kPrevAsn, Reg::R9);
    a.stdw(Reg::R10, kPrevValid, 1);
    a.place(member_next);
    a.add64(Reg::R6, 4);
    a.sub64(Reg::R8, 1);
    a.ja(member_loop);
  }

  a.place(reject);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterReject));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("valley_free");
}

xbgp::Manifest valley_free_manifest() {
  Manifest m;
  m.attach("valley_free", Op::kInboundFilter, valley_free_program());
  return m;
}

ebpf::Program valley_free_relaxed_program() {
  // The exemption stage: critical prefixes are accepted outright,
  // short-circuiting the rest of the chain; everything else delegates to
  // the strict filter via next() — extension composition at work.
  Assembler a;
  auto yield = a.make_label();
  auto accept = a.make_label();

  a.mov64(Reg::R1, arg::kPrefix);
  a.call(helper::kGetArg);
  a.jeq(Reg::R0, 0, yield);
  a.ldxdw(Reg::R6, Reg::R0, 0);  // whole PrefixArg in one word

  // "critical_prefixes" is 17 bytes: reserve three 8-byte stack chunks.
  emit_get_xtra(a, -24, xtra::kCriticalPrefixes);
  a.jeq(Reg::R0, 0, yield);
  a.mov64(Reg::R7, Reg::R0);
  emit_get_xtra_len(a, -24, xtra::kCriticalPrefixes);
  a.add64(Reg::R0, Reg::R7);
  a.mov64(Reg::R8, Reg::R0);  // end of the exemption list

  {
    auto loop = a.make_label();
    a.place(loop);
    a.jge(Reg::R7, Reg::R8, yield);
    a.ldxdw(Reg::R1, Reg::R7, 0);
    a.jeq(Reg::R1, Reg::R6, accept);
    a.add64(Reg::R7, 8);
    a.ja(loop);
  }

  a.place(accept);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterAccept));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("valley_exempt");
}

xbgp::Manifest valley_free_relaxed_manifest() {
  Manifest m;
  m.attach("valley_exempt", Op::kInboundFilter, valley_free_relaxed_program(), /*order=*/0,
           0, "valley_free");
  m.attach("valley_free", Op::kInboundFilter, valley_free_program(), /*order=*/1, 0,
           "valley_free");
  return m;
}

}  // namespace xb::ext
