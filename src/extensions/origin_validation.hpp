// Use case §3.4: "Validating BGP Prefix Origins" as extension code.
//
// Two bytecodes:
//
//  * ov_init    (XBGP_INIT)          — reads the router's "roa_v1" xtra blob
//    (the paper's DUT "loads a file that considers 75% of the injected
//    prefixes as valid") and builds the extension's own hash table through
//    the map helpers — "our extension uses a hash table as in BIRD", which
//    is why xFir's extension beat FRRouting's native trie walk by ~10%.
//  * ov_inbound (BGP_INBOUND_FILTER) — extracts the origin AS from AS_PATH,
//    looks the announced prefix up in the hash table, records the RFC 6811
//    validation state in the route metadata, and always delegates with
//    next(): the paper's test "checks the validity of the origin of each
//    prefix but does not discard the invalid ones".
//
// Map encoding (map id 1): key1 = (prefix address << 8) | prefix length,
// key2 = 0; value = (origin AS << 8) | max length. Value 0 means absent, so
// only exact-prefix ROAs are representable — matching how the experiment's
// ROA set is generated (one ROA per announced prefix).
#pragma once

#include "ebpf/program.hpp"
#include "xbgp/manifest.hpp"

namespace xb::ext {

[[nodiscard]] ebpf::Program ov_init_program();
[[nodiscard]] ebpf::Program ov_inbound_program();

/// Manifest attaching both bytecodes. `roa_count` pre-sizes the hash table.
[[nodiscard]] xbgp::Manifest origin_validation_manifest(std::size_t roa_count = 0);

}  // namespace xb::ext
