#include "extensions/route_reflection.hpp"

#include "bgp/types.hpp"
#include "extensions/common.hpp"

namespace xb::ext {

using namespace xbgp;

namespace {
constexpr std::int32_t kOriginatorCode = bgp::attr_code::kOriginatorId;  // 9
constexpr std::int32_t kClusterCode = bgp::attr_code::kClusterList;      // 10
constexpr std::int32_t kOptionalFlag = bgp::attr_flag::kOptional;        // 0x80
}  // namespace

ebpf::Program rr_inbound_program() {
  Assembler a;
  auto yield = a.make_label();
  auto reject = a.make_label();
  auto skip_originator = a.make_label();
  auto loop = a.make_label();

  // Only iBGP sessions carry reflection attributes.
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, yield);
  a.ldxb(Reg::R1, Reg::R0, kPeerType);
  a.jne(Reg::R1, kPeerTypeIbgp, yield);
  a.ldxw(Reg::R6, Reg::R0, kPeerLocalRouterId);

  // ORIGINATOR_ID == our router id -> loop.
  a.mov64(Reg::R1, kOriginatorCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, skip_originator);
  a.ldxw(Reg::R7, Reg::R0, kAttrData);
  a.to_be(Reg::R7, 32);  // wire value is big-endian
  a.jeq(Reg::R7, Reg::R6, reject);
  a.place(skip_originator);

  // Our cluster id in CLUSTER_LIST -> loop.
  emit_get_xtra(a, -16, xtra::kClusterId);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R7, Reg::R0, 0);
  a.mov64(Reg::R1, kClusterCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, yield);
  a.ldxh(Reg::R8, Reg::R0, kAttrLen);
  a.mov64(Reg::R9, Reg::R0);
  a.add64(Reg::R9, kAttrData);  // r9 = cursor over value bytes
  a.add64(Reg::R8, Reg::R9);    // r8 = end
  a.place(loop);
  a.jge(Reg::R9, Reg::R8, yield);
  a.ldxw(Reg::R2, Reg::R9, 0);
  a.to_be(Reg::R2, 32);
  a.jeq(Reg::R2, Reg::R7, reject);
  a.add64(Reg::R9, 4);
  a.ja(loop);

  a.place(reject);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterReject));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("rr_inbound");
}

ebpf::Program rr_outbound_program() {
  Assembler a;
  auto yield = a.make_label();
  auto reject = a.make_label();
  auto reflect = a.make_label();
  auto have_originator = a.make_label();
  auto originator_absent = a.make_label();
  auto accept = a.make_label();

  // r6 = src peer, r7 = dst peer. Local routes (no src) are not ours.
  a.call(helper::kGetSrcPeerInfo);
  a.jeq(Reg::R0, 0, yield);
  a.mov64(Reg::R6, Reg::R0);
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, yield);
  a.mov64(Reg::R7, Reg::R0);

  // Reflection concerns iBGP-learned routes exported to iBGP peers only.
  a.ldxb(Reg::R1, Reg::R6, kPeerType);
  a.jne(Reg::R1, kPeerTypeIbgp, yield);
  a.ldxb(Reg::R1, Reg::R7, kPeerType);
  a.jne(Reg::R1, kPeerTypeIbgp, yield);

  // RFC 4456: reflect iff the source or the destination is a client.
  a.ldxb(Reg::R1, Reg::R6, kPeerRrClient);
  a.ldxb(Reg::R2, Reg::R7, kPeerRrClient);
  a.or64(Reg::R1, Reg::R2);
  a.jne(Reg::R1, 0, reflect);
  a.place(reject);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterReject));
  a.exit_();

  a.place(reflect);
  // ORIGINATOR_ID: keep an existing value, else the source's router id.
  a.mov64(Reg::R1, kOriginatorCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, originator_absent);
  // Existing: copy its big-endian bytes verbatim.
  a.ldxw(Reg::R2, Reg::R0, kAttrData);
  a.stxw(Reg::R10, -8, Reg::R2);
  a.ja(have_originator);
  a.place(originator_absent);
  a.ldxw(Reg::R2, Reg::R6, kPeerRouterId);
  a.to_be(Reg::R2, 32);
  a.stxw(Reg::R10, -8, Reg::R2);
  a.place(have_originator);
  a.mov64(Reg::R1, kOriginatorCode);
  a.mov64(Reg::R2, kOptionalFlag);
  a.mov64(Reg::R3, Reg::R10);
  a.add64(Reg::R3, -8);
  a.mov64(Reg::R4, 4);
  a.call(helper::kSetAttr);

  // CLUSTER_LIST: new value = be32(our cluster id) ++ existing value.
  emit_get_xtra(a, -24, xtra::kClusterId);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R8, Reg::R0, 0);
  a.to_be(Reg::R8, 32);  // big-endian bytes of our cluster id
  a.mov64(Reg::R1, kClusterCode);
  a.call(helper::kGetAttr);
  {
    auto append = a.make_label();
    a.jne(Reg::R0, 0, append);
    // No existing list: value is just our id.
    a.stxw(Reg::R10, -32, Reg::R8);
    a.mov64(Reg::R1, kClusterCode);
    a.mov64(Reg::R2, kOptionalFlag);
    a.mov64(Reg::R3, Reg::R10);
    a.add64(Reg::R3, -32);
    a.mov64(Reg::R4, 4);
    a.call(helper::kSetAttr);
    a.ja(accept);

    a.place(append);
    a.mov64(Reg::R6, Reg::R0);  // r6 = existing attr (src peer no longer needed)
    a.ldxh(Reg::R7, Reg::R6, kAttrLen);
    a.mov64(Reg::R1, Reg::R7);
    a.add64(Reg::R1, 4);
    a.call(helper::kCtxMalloc);
    a.jeq(Reg::R0, 0, yield);
    a.mov64(Reg::R9, Reg::R0);
    a.stxw(Reg::R9, 0, Reg::R8);  // our id first
    a.mov64(Reg::R1, Reg::R9);
    a.add64(Reg::R1, 4);
    a.mov64(Reg::R2, Reg::R6);
    a.add64(Reg::R2, kAttrData);
    a.mov64(Reg::R3, Reg::R7);
    a.call(helper::kMemcpy);
    a.mov64(Reg::R1, kClusterCode);
    a.mov64(Reg::R2, kOptionalFlag);
    a.mov64(Reg::R3, Reg::R9);
    a.mov64(Reg::R4, Reg::R7);
    a.add64(Reg::R4, 4);
    a.call(helper::kSetAttr);
  }

  a.place(accept);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterAccept));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("rr_outbound");
}

ebpf::Program rr_encode_program() {
  Assembler a;
  auto done = a.make_label();
  auto skip_cluster = a.make_label();

  // Reflection attributes only travel over iBGP sessions.
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, done);
  a.ldxb(Reg::R1, Reg::R0, kPeerType);
  a.jne(Reg::R1, kPeerTypeIbgp, done);

  // ORIGINATOR_ID -> 7 wire bytes: flags, code, len, value[4].
  {
    auto absent = a.make_label();
    a.mov64(Reg::R1, kOriginatorCode);
    a.call(helper::kGetAttr);
    a.jeq(Reg::R0, 0, absent);
    a.stb(Reg::R10, -16, kOptionalFlag);
    a.stb(Reg::R10, -15, kOriginatorCode);
    a.stb(Reg::R10, -14, 4);
    a.ldxw(Reg::R2, Reg::R0, kAttrData);
    a.stxw(Reg::R10, -13, Reg::R2);
    a.mov64(Reg::R1, Reg::R10);
    a.add64(Reg::R1, -16);
    a.mov64(Reg::R2, 7);
    a.call(helper::kWriteBuf);
    a.place(absent);
  }

  // CLUSTER_LIST -> 3 header bytes + value.
  a.mov64(Reg::R1, kClusterCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, skip_cluster);
  a.mov64(Reg::R6, Reg::R0);
  a.ldxh(Reg::R7, Reg::R6, kAttrLen);
  a.mov64(Reg::R1, Reg::R7);
  a.add64(Reg::R1, 3);
  a.call(helper::kCtxMalloc);
  a.jeq(Reg::R0, 0, skip_cluster);
  a.mov64(Reg::R9, Reg::R0);
  a.stb(Reg::R9, 0, kOptionalFlag);
  a.stb(Reg::R9, 1, kClusterCode);
  a.stxb(Reg::R9, 2, Reg::R7);  // value length (< 256 for sane cluster lists)
  a.mov64(Reg::R1, Reg::R9);
  a.add64(Reg::R1, 3);
  a.mov64(Reg::R2, Reg::R6);
  a.add64(Reg::R2, kAttrData);
  a.mov64(Reg::R3, Reg::R7);
  a.call(helper::kMemcpy);
  a.mov64(Reg::R1, Reg::R9);
  a.mov64(Reg::R2, Reg::R7);
  a.add64(Reg::R2, 3);
  a.call(helper::kWriteBuf);
  a.place(skip_cluster);

  a.place(done);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kOpOk));
  a.exit_();
  return a.build("rr_encode");
}

xbgp::Manifest route_reflection_manifest() {
  Manifest m;
  m.attach("rr_inbound", Op::kInboundFilter, rr_inbound_program());
  m.attach("rr_outbound", Op::kOutboundFilter, rr_outbound_program());
  m.attach("rr_encode", Op::kEncodeMessage, rr_encode_program());
  return m;
}

}  // namespace xb::ext
