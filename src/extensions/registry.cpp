#include "extensions/registry.hpp"

#include "extensions/community_tag.hpp"
#include "extensions/geoloc.hpp"
#include "extensions/igp_filter.hpp"
#include "extensions/origin_validation.hpp"
#include "extensions/route_reflection.hpp"
#include "extensions/valley_free.hpp"

namespace xb::ext {

xbgp::ProgramRegistry default_registry() {
  xbgp::ProgramRegistry reg;
  reg.add(igp_filter_program());
  reg.add(rr_inbound_program());
  reg.add(rr_outbound_program());
  reg.add(rr_encode_program());
  reg.add(ov_init_program());
  reg.add(ov_inbound_program());
  reg.add(geoloc_receive_program());
  reg.add(geoloc_inbound_program());
  reg.add(geoloc_outbound_program());
  reg.add(geoloc_encode_program());
  reg.add(geoloc_decision_program());
  reg.add(valley_free_program());
  reg.add(valley_free_relaxed_program());
  reg.add(ctag_ingress_program());
  reg.add(ctag_export_program());
  return reg;
}

}  // namespace xb::ext
