// Shared emission utilities for the use-case extension programs.
//
// Every use case in this directory is genuine eBPF bytecode produced by the
// assembler; the *same* Program objects are attached to Fir and Wren, which
// is the paper's central claim (one extension artifact, any compliant host).
#pragma once

#include <cstdint>
#include <string_view>

#include "ebpf/assembler.hpp"
#include "xbgp/api.hpp"

namespace xb::ext {

using ebpf::Assembler;
using ebpf::Reg;

/// Writes `text` into the VM stack at [r10 + off, r10 + off + text.size()),
/// clobbering `scratch`. `off` must be negative and leave room for the text.
/// Returns the text length (for the helper's key_len argument).
inline std::int64_t emit_stack_string(Assembler& a, std::int16_t off, std::string_view text,
                                      Reg scratch = Reg::R1) {
  for (std::size_t i = 0; i < text.size(); i += 8) {
    std::uint64_t chunk = 0;
    const std::size_t n = std::min<std::size_t>(8, text.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      chunk |= static_cast<std::uint64_t>(static_cast<unsigned char>(text[i + k])) << (8 * k);
    }
    a.lddw(scratch, chunk);
    a.stxdw(Reg::R10, static_cast<std::int16_t>(off + static_cast<std::int16_t>(i)), scratch);
  }
  return static_cast<std::int64_t>(text.size());
}

/// Emits `r0 = get_xtra(key)`: stores the key at [r10 + off], loads r1/r2 and
/// calls the helper. On return r0 is the blob pointer or 0.
inline void emit_get_xtra(Assembler& a, std::int16_t off, std::string_view key) {
  const auto len = emit_stack_string(a, off, key);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, off);
  a.mov64(Reg::R2, static_cast<std::int32_t>(len));
  a.call(xbgp::helper::kGetXtra);
}

/// Same for get_xtra_len: r0 = blob length or (u64)-1.
inline void emit_get_xtra_len(Assembler& a, std::int16_t off, std::string_view key) {
  const auto len = emit_stack_string(a, off, key);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, off);
  a.mov64(Reg::R2, static_cast<std::int32_t>(len));
  a.call(xbgp::helper::kGetXtraLen);
}

/// Emits "terminate this program by delegating to the next one": the next()
/// helper never returns control to the bytecode, but the verifier requires a
/// terminating tail, so a defensive exit follows.
inline void emit_next(Assembler& a) {
  a.call(xbgp::helper::kNext);
  a.mov64(Reg::R0, 0);
  a.exit_();
}

// PeerInfo field offsets (layout pinned by static_asserts in xbgp/api.hpp).
inline constexpr std::int16_t kPeerRouterId = 0;
inline constexpr std::int16_t kPeerAsn = 4;
inline constexpr std::int16_t kPeerAddr = 8;
inline constexpr std::int16_t kPeerType = 12;
inline constexpr std::int16_t kPeerRrClient = 13;
inline constexpr std::int16_t kPeerLocalRouterId = 16;
inline constexpr std::int16_t kPeerLocalAsn = 20;
inline constexpr std::int16_t kPeerLocalAddr = 24;

// NexthopInfo field offsets.
inline constexpr std::int16_t kNexthopIgpMetric = 0;
inline constexpr std::int16_t kNexthopAddr = 4;
inline constexpr std::int16_t kNexthopReachable = 8;

// AttrHdr field offsets (value bytes start at kAttrData).
inline constexpr std::int16_t kAttrFlags = 0;
inline constexpr std::int16_t kAttrCode = 1;
inline constexpr std::int16_t kAttrLen = 2;
inline constexpr std::int16_t kAttrData = 4;

// PrefixArg field offsets.
inline constexpr std::int16_t kPrefixAddr = 0;
inline constexpr std::int16_t kPrefixLen = 4;

}  // namespace xb::ext
