// Use case §3.1, the *status quo* the paper argues against.
//
// "This policy can be implemented by tagging routes with BGP communities on
// all ingress routers and then filtering them on export. While frequently
// used [11], this solution is imperfect": the tag reflects where a route was
// learned, not what reaching it currently costs, so after failures reroute
// traffic over expensive links the stale tag keeps the route advertised.
//
// Two bytecodes implement the classic approach so it can be compared,
// executable, against the paper's Listing-1 IGP-cost filter:
//
//  * ctag_ingress (BGP_RECEIVE_MESSAGE) — on eBGP ingress, stamps the route
//    with the region community from the router's "region_tag" config.
//  * ctag_export  (BGP_OUTBOUND_FILTER) — exports to eBGP peers only routes
//    carrying the community in "required_tag"; others are rejected.
//
// The §3.1 scenario test (tests/scenario_301_test.cpp) shows the failure
// mode: after the intra-region links die, the community filter keeps
// advertising while the IGP filter adapts.
#pragma once

#include "ebpf/program.hpp"
#include "xbgp/manifest.hpp"

namespace xb::ext {

[[nodiscard]] ebpf::Program ctag_ingress_program();
[[nodiscard]] ebpf::Program ctag_export_program();

[[nodiscard]] xbgp::Manifest community_tag_manifest(bool with_ingress = true,
                                                    bool with_export = true);

}  // namespace xb::ext
