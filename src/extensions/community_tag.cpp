#include "extensions/community_tag.hpp"

#include "bgp/types.hpp"
#include "extensions/common.hpp"

namespace xb::ext {

using namespace xbgp;

namespace {
constexpr std::int32_t kCommunitiesCode = bgp::attr_code::kCommunities;  // 8
constexpr std::int32_t kOptTransitive =
    bgp::attr_flag::kOptional | bgp::attr_flag::kTransitive;  // 0xC0
}  // namespace

ebpf::Program ctag_ingress_program() {
  Assembler a;
  auto done = a.make_label();

  // Ingress tagging happens where routes enter the network: eBGP only.
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, done);
  a.ldxb(Reg::R1, Reg::R0, kPeerType);
  a.jne(Reg::R1, kPeerTypeEbgp, done);

  // The region tag from configuration (one 32-bit community value).
  emit_get_xtra(a, -16, "region_tag");
  a.jeq(Reg::R0, 0, done);
  a.ldxw(Reg::R6, Reg::R0, 0);

  // Append to any existing COMMUNITIES value (wire form: 4 bytes each, BE).
  {
    auto fresh = a.make_label();
    auto have_buffer = a.make_label();
    a.mov64(Reg::R1, kCommunitiesCode);
    a.call(helper::kGetAttr);
    a.jeq(Reg::R0, 0, fresh);
    // existing: allocate len+4, copy, append.
    a.mov64(Reg::R7, Reg::R0);
    a.ldxh(Reg::R8, Reg::R7, kAttrLen);
    a.mov64(Reg::R1, Reg::R8);
    a.add64(Reg::R1, 4);
    a.call(helper::kCtxMalloc);
    a.jeq(Reg::R0, 0, done);
    a.mov64(Reg::R9, Reg::R0);
    a.mov64(Reg::R1, Reg::R9);
    a.mov64(Reg::R2, Reg::R7);
    a.add64(Reg::R2, kAttrData);
    a.mov64(Reg::R3, Reg::R8);
    a.call(helper::kMemcpy);
    a.ja(have_buffer);

    a.place(fresh);
    a.mov64(Reg::R8, 0);  // existing length 0
    a.mov64(Reg::R1, 8);
    a.call(helper::kCtxMalloc);
    a.jeq(Reg::R0, 0, done);
    a.mov64(Reg::R9, Reg::R0);

    a.place(have_buffer);
    // Write the tag (big-endian) at the end, then add_attr the new value.
    a.mov64(Reg::R1, Reg::R6);
    a.call(helper::kHtonl);
    a.mov64(Reg::R1, Reg::R9);
    a.add64(Reg::R1, Reg::R8);
    a.stxw(Reg::R1, 0, Reg::R0);
    a.mov64(Reg::R1, kCommunitiesCode);
    a.mov64(Reg::R2, kOptTransitive);
    a.mov64(Reg::R3, Reg::R9);
    a.mov64(Reg::R4, Reg::R8);
    a.add64(Reg::R4, 4);
    a.call(helper::kAddAttr);
  }

  a.place(done);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kOpOk));
  a.exit_();
  return a.build("ctag_ingress");
}

ebpf::Program ctag_export_program() {
  Assembler a;
  auto yield = a.make_label();
  auto reject = a.make_label();

  // Only filter exports towards eBGP peers (§3.1: announcements to peers).
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, yield);
  a.ldxb(Reg::R1, Reg::R0, kPeerType);
  a.jne(Reg::R1, kPeerTypeEbgp, yield);

  emit_get_xtra(a, -16, "required_tag");
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R6, Reg::R0, 0);
  a.mov64(Reg::R1, Reg::R6);
  a.call(helper::kHtonl);
  a.mov64(Reg::R6, Reg::R0);  // big-endian bytes of the required community

  a.mov64(Reg::R1, kCommunitiesCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, reject);  // untagged: not from our region
  a.mov64(Reg::R7, Reg::R0);
  a.add64(Reg::R7, kAttrData);      // cursor
  a.ldxh(Reg::R8, Reg::R0, kAttrLen);
  a.add64(Reg::R8, Reg::R7);        // end
  {
    auto loop = a.make_label();
    a.place(loop);
    a.jge(Reg::R7, Reg::R8, reject);
    a.ldxw(Reg::R2, Reg::R7, 0);
    a.jeq(Reg::R2, Reg::R6, yield);  // tagged: let the next filter decide
    a.add64(Reg::R7, 4);
    a.ja(loop);
  }

  a.place(reject);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterReject));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("ctag_export");
}

xbgp::Manifest community_tag_manifest(bool with_ingress, bool with_export) {
  Manifest m;
  if (with_ingress) {
    m.attach("ctag_ingress", Op::kReceiveMessage, ctag_ingress_program(), 0, 0, "ctag");
  }
  if (with_export) {
    m.attach("ctag_export", Op::kOutboundFilter, ctag_export_program(), 0, 0, "ctag");
  }
  return m;
}

}  // namespace xb::ext
