// Use case §3.2: BGP Route Reflection (RFC 4456) entirely as extension code.
//
// Three bytecodes reimplement the ORIGINATOR_ID / CLUSTER_LIST machinery a
// route reflector needs, with the host's native reflection disabled:
//
//  * rr_inbound  (BGP_INBOUND_FILTER)  — loop prevention: reject routes whose
//    ORIGINATOR_ID is our router id or whose CLUSTER_LIST contains our
//    cluster id; otherwise delegate with next().
//  * rr_outbound (BGP_OUTBOUND_FILTER) — reflection decision for
//    iBGP-learned routes exported to iBGP peers (client/non-client rules);
//    when reflecting, stamps ORIGINATOR_ID and prepends our cluster id to
//    CLUSTER_LIST through the xBGP attribute API, then returns ACCEPT
//    (overriding the host's default "never iBGP to iBGP" policy).
//  * rr_encode   (BGP_ENCODE_MESSAGE)  — serialises the extension-managed
//    attributes into the outgoing UPDATE with write_buf.
//
// The same three Program objects are attached to Fir and Wren.
#pragma once

#include "ebpf/program.hpp"
#include "xbgp/manifest.hpp"

namespace xb::ext {

[[nodiscard]] ebpf::Program rr_inbound_program();
[[nodiscard]] ebpf::Program rr_outbound_program();
[[nodiscard]] ebpf::Program rr_encode_program();

/// Manifest attaching all three bytecodes.
[[nodiscard]] xbgp::Manifest route_reflection_manifest();

}  // namespace xb::ext
