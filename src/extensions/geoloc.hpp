// Use case §2: the GeoLoc attribute — the paper's running example (Fig. 2).
//
// Four bytecodes add an unstandardised BGP attribute carrying the geographic
// coordinates of the router where a route entered the network, and filter
// routes learned too far away:
//
//  * geoloc_receive  (BGP_RECEIVE_MESSAGE) — on eBGP sessions, reads the raw
//    UPDATE with get_arg, and attaches a GeoLoc attribute with this router's
//    coordinates (get_xtra "geo_coord") via add_attr.
//  * geoloc_inbound  (BGP_INBOUND_FILTER) — rejects routes whose GeoLoc is
//    farther than "geo_max_dist" from this router (squared micro-degree
//    distance, integer arithmetic).
//  * geoloc_outbound (BGP_OUTBOUND_FILTER) — re-stamps the attribute on the
//    exported route so it survives host-native encoding, then delegates.
//  * geoloc_encode   (BGP_ENCODE_MESSAGE) — serialises GeoLoc into outgoing
//    UPDATEs with write_buf.
#pragma once

#include "ebpf/program.hpp"
#include "xbgp/manifest.hpp"

namespace xb::ext {

[[nodiscard]] ebpf::Program geoloc_receive_program();
[[nodiscard]] ebpf::Program geoloc_inbound_program();
[[nodiscard]] ebpf::Program geoloc_outbound_program();
[[nodiscard]] ebpf::Program geoloc_encode_program();

/// BGP_DECISION: "this attribute can be used to adapt router decisions"
/// (§2) — when both compared routes carry GeoLoc, prefer the one learned
/// geographically closer to this router; otherwise delegate to the native
/// decision process with next().
[[nodiscard]] ebpf::Program geoloc_decision_program();

/// All four Fig. 2 bytecodes. `with_distance_filter` controls whether the
/// inbound filter is attached (edge routers attach it; pure transit may
/// not); `with_decision` additionally attaches the decision override.
[[nodiscard]] xbgp::Manifest geoloc_manifest(bool with_distance_filter = true,
                                             bool with_decision = false);

}  // namespace xb::ext
