// Registry of every use-case extension program, for text-form manifests.
#pragma once

#include "xbgp/manifest.hpp"

namespace xb::ext {

/// A registry containing all programs shipped with this repository:
/// igp_filter; rr_inbound / rr_outbound / rr_encode; ov_init / ov_inbound;
/// geoloc_receive / geoloc_inbound / geoloc_outbound / geoloc_encode;
/// valley_free.
[[nodiscard]] xbgp::ProgramRegistry default_registry();

}  // namespace xb::ext
