// Use case §3.1: "Filtering Routes Based on IGP Costs" — Listing 1.
//
// An export filter that rejects BGP routes whose nexthop IGP metric exceeds
// a configured threshold, so that e.g. routes learned across a transatlantic
// backup path are not announced to peers on the other continent. The
// bytecode mirrors Listing 1 of the paper:
//
//   uint64_t export_igp(bpf_full_args_t *args UNUSED) {
//     struct ubpf_nexthop *nexthop = get_nexthop(NULL);
//     struct ubpf_peer_info *peer = get_peer_info();
//     if (peer->peer_type != EBGP_SESSION) {
//       next(); // Do not filter on iBGP sessions
//     } if (nexthop->igp_metric <= MAX_METRIC) {
//       next(); // the route is accepted by this filter;
//     }         // next filter will decide to export route
//     return FILTER_REJECT;
//   }
//
// MAX_METRIC comes from the router's "max_metric" xtra config entry.
#pragma once

#include "ebpf/program.hpp"
#include "xbgp/manifest.hpp"

namespace xb::ext {

/// The Listing-1 export filter bytecode (BGP_OUTBOUND_FILTER).
[[nodiscard]] ebpf::Program igp_filter_program();

/// Manifest attaching the filter.
[[nodiscard]] xbgp::Manifest igp_filter_manifest();

}  // namespace xb::ext
