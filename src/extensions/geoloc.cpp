#include "extensions/geoloc.hpp"

#include "bgp/types.hpp"
#include "extensions/common.hpp"

namespace xb::ext {

using namespace xbgp;

namespace {
constexpr std::int32_t kGeoCode = bgp::attr_code::kGeoLoc;  // 242
constexpr std::int32_t kGeoFlags =
    bgp::attr_flag::kOptional | bgp::attr_flag::kTransitive;  // 0xC0

/// Sign-extends the low 32 bits of `r` (coordinates are signed
/// micro-degrees; 32-bit loads zero-extend).
void emit_sext32(Assembler& a, Reg r) {
  a.lsh64(r, 32);
  a.arsh64(r, 32);
}
}  // namespace

ebpf::Program geoloc_receive_program() {
  Assembler a;
  auto done = a.make_label();
  auto preserve = a.make_label();

  // Session type decides the action: on eBGP the route is entering our
  // network and gets stamped with our coordinates; on iBGP the attribute
  // arrived on the wire and must be re-added so the host's conversion keeps
  // what it would otherwise drop as an unknown attribute.
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, done);
  a.ldxb(Reg::R1, Reg::R0, kPeerType);
  a.jne(Reg::R1, kPeerTypeEbgp, preserve);

  // Raw UPDATE bytes in network order (paper: get_arg); confirm the type.
  a.mov64(Reg::R1, arg::kRawMessage);
  a.call(helper::kGetArg);
  a.jeq(Reg::R0, 0, done);
  a.ldxb(Reg::R1, Reg::R0, 18);  // message type byte of the BGP header
  a.jne(Reg::R1, 2, done);

  // Keep an existing GeoLoc (the route may have been tagged upstream).
  a.mov64(Reg::R1, kGeoCode);
  a.call(helper::kGetAttr);
  a.jne(Reg::R0, 0, preserve);

  // Our coordinates -> big-endian attribute value on the stack.
  emit_get_xtra(a, -16, xtra::kGeoCoord);
  a.jeq(Reg::R0, 0, done);
  a.ldxw(Reg::R6, Reg::R0, 0);
  a.ldxw(Reg::R7, Reg::R0, 4);
  a.mov64(Reg::R1, Reg::R6);
  a.call(helper::kHtonl);
  a.stxw(Reg::R10, -24, Reg::R0);
  a.mov64(Reg::R1, Reg::R7);
  a.call(helper::kHtonl);
  a.stxw(Reg::R10, -20, Reg::R0);

  a.mov64(Reg::R1, kGeoCode);
  a.mov64(Reg::R2, kGeoFlags);
  a.mov64(Reg::R3, Reg::R10);
  a.add64(Reg::R3, -24);
  a.mov64(Reg::R4, 8);
  a.call(helper::kAddAttr);
  a.ja(done);

  // iBGP (or already-tagged) path: re-add the received attribute verbatim so
  // the host keeps it through its internal conversion.
  a.place(preserve);
  a.mov64(Reg::R1, kGeoCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, done);
  a.ldxh(Reg::R4, Reg::R0, kAttrLen);
  a.jne(Reg::R4, 8, done);  // malformed
  a.mov64(Reg::R3, Reg::R0);
  a.add64(Reg::R3, kAttrData);
  a.mov64(Reg::R1, kGeoCode);
  a.mov64(Reg::R2, kGeoFlags);
  a.call(helper::kAddAttr);

  a.place(done);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kOpOk));
  a.exit_();
  return a.build("geoloc_receive");
}

ebpf::Program geoloc_inbound_program() {
  Assembler a;
  auto yield = a.make_label();

  // Route coordinates (signed micro-degrees, big-endian on the wire).
  a.mov64(Reg::R1, kGeoCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R6, Reg::R0, kAttrData);
  a.to_be(Reg::R6, 32);
  emit_sext32(a, Reg::R6);
  a.ldxw(Reg::R7, Reg::R0, kAttrData + 4);
  a.to_be(Reg::R7, 32);
  emit_sext32(a, Reg::R7);

  // Our coordinates and the distance threshold.
  emit_get_xtra(a, -16, xtra::kGeoCoord);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R8, Reg::R0, 0);
  emit_sext32(a, Reg::R8);
  a.ldxw(Reg::R9, Reg::R0, 4);
  emit_sext32(a, Reg::R9);
  emit_get_xtra(a, -32, xtra::kGeoMaxDist);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R0, Reg::R0, 0);
  a.mul64(Reg::R0, Reg::R0);  // threshold squared

  // Squared euclidean distance in micro-degrees.
  a.sub64(Reg::R6, Reg::R8);
  a.mul64(Reg::R6, Reg::R6);
  a.sub64(Reg::R7, Reg::R9);
  a.mul64(Reg::R7, Reg::R7);
  a.add64(Reg::R6, Reg::R7);
  a.jle(Reg::R6, Reg::R0, yield);

  // Too far: filter the route away (paper: "filtering away routes that are
  // more than x kilometers away").
  a.mov64(Reg::R0, static_cast<std::int32_t>(kFilterReject));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("geoloc_inbound");
}

ebpf::Program geoloc_outbound_program() {
  Assembler a;
  auto yield = a.make_label();

  // Re-stamp GeoLoc through the xBGP attribute API so the export copy keeps
  // it as an extension-managed attribute regardless of host internals.
  a.call(helper::kGetPeerInfo);
  a.jeq(Reg::R0, 0, yield);
  a.mov64(Reg::R1, kGeoCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, yield);
  a.mov64(Reg::R6, Reg::R0);
  a.ldxh(Reg::R4, Reg::R6, kAttrLen);
  a.mov64(Reg::R1, kGeoCode);
  a.mov64(Reg::R2, kGeoFlags);
  a.mov64(Reg::R3, Reg::R6);
  a.add64(Reg::R3, kAttrData);
  a.call(helper::kSetAttr);

  a.place(yield);
  emit_next(a);
  return a.build("geoloc_outbound");
}

ebpf::Program geoloc_encode_program() {
  Assembler a;
  auto done = a.make_label();

  a.mov64(Reg::R1, kGeoCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, done);
  a.mov64(Reg::R6, Reg::R0);
  a.ldxh(Reg::R7, Reg::R6, kAttrLen);
  a.jne(Reg::R7, 8, done);  // malformed: do not emit

  // Wire form: flags, code, length, 8 value bytes = 11 bytes on the stack.
  a.stb(Reg::R10, -16, kGeoFlags);
  a.stb(Reg::R10, -15, kGeoCode);
  a.stxb(Reg::R10, -14, Reg::R7);
  a.ldxdw(Reg::R2, Reg::R6, kAttrData);
  a.stxdw(Reg::R10, -13, Reg::R2);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, -16);
  a.mov64(Reg::R2, 11);
  a.call(helper::kWriteBuf);

  a.place(done);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kOpOk));
  a.exit_();
  return a.build("geoloc_encode");
}

ebpf::Program geoloc_decision_program() {
  Assembler a;
  auto yield = a.make_label();
  auto take_new = a.make_label();
  auto keep_old = a.make_label();

  // Candidate route's coordinates.
  a.mov64(Reg::R1, kGeoCode);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R6, Reg::R0, kAttrData);
  a.to_be(Reg::R6, 32);
  emit_sext32(a, Reg::R6);
  a.ldxw(Reg::R7, Reg::R0, kAttrData + 4);
  a.to_be(Reg::R7, 32);
  emit_sext32(a, Reg::R7);

  // Our own coordinates.
  emit_get_xtra(a, -16, xtra::kGeoCoord);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R8, Reg::R0, 0);
  emit_sext32(a, Reg::R8);
  a.ldxw(Reg::R9, Reg::R0, 4);
  emit_sext32(a, Reg::R9);

  // Candidate squared distance -> stack slot.
  a.sub64(Reg::R6, Reg::R8);
  a.mul64(Reg::R6, Reg::R6);
  a.sub64(Reg::R7, Reg::R9);
  a.mul64(Reg::R7, Reg::R7);
  a.add64(Reg::R6, Reg::R7);
  a.stxdw(Reg::R10, -24, Reg::R6);

  // Current best route's coordinates (the comparison's other side).
  a.mov64(Reg::R1, kGeoCode);
  a.call(helper::kGetAttrAlt);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R6, Reg::R0, kAttrData);
  a.to_be(Reg::R6, 32);
  emit_sext32(a, Reg::R6);
  a.ldxw(Reg::R7, Reg::R0, kAttrData + 4);
  a.to_be(Reg::R7, 32);
  emit_sext32(a, Reg::R7);
  a.sub64(Reg::R6, Reg::R8);
  a.mul64(Reg::R6, Reg::R6);
  a.sub64(Reg::R7, Reg::R9);
  a.mul64(Reg::R7, Reg::R7);
  a.add64(Reg::R6, Reg::R7);  // best's squared distance

  // Strictly closer candidate wins; strictly closer best keeps the old
  // route; a tie delegates to the native decision process.
  a.ldxdw(Reg::R1, Reg::R10, -24);  // candidate's squared distance
  a.jlt(Reg::R1, Reg::R6, take_new);
  a.jlt(Reg::R6, Reg::R1, keep_old);
  a.ja(yield);

  a.place(take_new);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kDecisionTakeNew));
  a.exit_();

  a.place(keep_old);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kDecisionKeepOld));
  a.exit_();

  a.place(yield);
  emit_next(a);
  return a.build("geoloc_decision");
}

xbgp::Manifest geoloc_manifest(bool with_distance_filter, bool with_decision) {
  Manifest m;
  m.attach("geoloc_receive", Op::kReceiveMessage, geoloc_receive_program(), 0, 0, "geoloc");
  if (with_distance_filter) {
    m.attach("geoloc_inbound", Op::kInboundFilter, geoloc_inbound_program(), 0, 0, "geoloc");
  }
  if (with_decision) {
    m.attach("geoloc_decision", Op::kDecision, geoloc_decision_program(), 0, 0, "geoloc");
  }
  m.attach("geoloc_outbound", Op::kOutboundFilter, geoloc_outbound_program(), 0, 0, "geoloc");
  m.attach("geoloc_encode", Op::kEncodeMessage, geoloc_encode_program(), 0, 0, "geoloc");
  return m;
}

}  // namespace xb::ext
