// Use case §3.3: valley-free path enforcement for BGP-in-the-datacenter.
//
// Instead of the same-AS-number trick (which also kills legitimate recovery
// paths and destroys AS-path troubleshooting), each router runs this import
// filter with a manifest of level pairs: one (lower AS, upper AS) entry per
// eBGP session from a level-i router to a level-i+1 router (paper: "we load
// a manifest containing every eBGP session from a router of level i to a
// router of level i+1 in a pair (AS_li, AS_l(i+1))").
//
// The filter activates only on *ascent* sessions (the sending peer is below
// us, i.e. (peer AS, our AS) is itself a manifest pair). There, any manifest
// pair appearing as consecutive ASNs in the AS_PATH proves the route already
// descended once — accepting it would complete a valley — so the route is
// rejected. Descent sessions pass through (next()), which is what keeps the
// normal up-then-down paths working.
#pragma once

#include "ebpf/program.hpp"
#include "xbgp/manifest.hpp"

namespace xb::ext {

[[nodiscard]] ebpf::Program valley_free_program();
[[nodiscard]] xbgp::Manifest valley_free_manifest();

/// The §3.3 flexibility argument, made concrete: the same filter, except
/// prefixes listed in the "critical_prefixes" xtra blob (packed PrefixArg
/// array) are exempted — the operator chooses reachability over valley
/// freedom for those destinations (e.g. under multiple failures), instead
/// of the all-or-nothing same-AS trick.
[[nodiscard]] ebpf::Program valley_free_relaxed_program();
[[nodiscard]] xbgp::Manifest valley_free_relaxed_manifest();

}  // namespace xb::ext
