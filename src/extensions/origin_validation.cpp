#include "extensions/origin_validation.hpp"

#include "bgp/types.hpp"
#include "extensions/common.hpp"

namespace xb::ext {

using namespace xbgp;

namespace {
constexpr std::int32_t kMapId = 1;
constexpr std::int32_t kRoaEntrySize = static_cast<std::int32_t>(sizeof(RoaEntry));
}  // namespace

ebpf::Program ov_init_program() {
  Assembler a;
  auto done = a.make_label();
  auto loop = a.make_label();

  // r6 = blob cursor, r7 = blob end.
  emit_get_xtra(a, -16, xtra::kRoaTable);
  a.jeq(Reg::R0, 0, done);
  a.mov64(Reg::R6, Reg::R0);
  emit_get_xtra_len(a, -16, xtra::kRoaTable);
  a.mov64(Reg::R7, Reg::R0);
  a.add64(Reg::R7, Reg::R6);

  a.place(loop);
  a.mov64(Reg::R8, Reg::R6);
  a.add64(Reg::R8, kRoaEntrySize);
  a.jgt(Reg::R8, Reg::R7, done);  // partial trailing entry: stop
  // key1 = (addr << 8) | prefix_len
  a.ldxw(Reg::R2, Reg::R6, 0);   // RoaEntry::addr (host order)
  a.lsh64(Reg::R2, 8);
  a.ldxb(Reg::R3, Reg::R6, 4);   // RoaEntry::prefix_len
  a.or64(Reg::R2, Reg::R3);
  // value = (origin << 8) | max_len
  a.ldxw(Reg::R4, Reg::R6, 8);   // RoaEntry::origin
  a.lsh64(Reg::R4, 8);
  a.ldxb(Reg::R5, Reg::R6, 5);   // RoaEntry::max_len
  a.or64(Reg::R4, Reg::R5);
  a.mov64(Reg::R1, kMapId);
  a.mov64(Reg::R3, 0);
  a.call(helper::kMapUpdate);
  a.add64(Reg::R6, kRoaEntrySize);
  a.ja(loop);

  a.place(done);
  a.mov64(Reg::R0, static_cast<std::int32_t>(kOpOk));
  a.exit_();
  return a.build("ov_init");
}

ebpf::Program ov_inbound_program() {
  Assembler a;
  auto yield = a.make_label();
  auto not_found = a.make_label();
  auto invalid = a.make_label();
  auto set_meta = a.make_label();  // r1 already holds the state value
  auto seg_loop = a.make_label();
  auto seg_set = a.make_label();
  auto seg_advance = a.make_label();
  auto path_done = a.make_label();

  // Walk AS_PATH to find the origin AS (last ASN of the final sequence).
  a.mov64(Reg::R1, bgp::attr_code::kAsPath);
  a.call(helper::kGetAttr);
  a.jeq(Reg::R0, 0, not_found);
  a.mov64(Reg::R6, Reg::R0);
  a.ldxh(Reg::R7, Reg::R6, kAttrLen);
  a.mov64(Reg::R8, Reg::R6);
  a.add64(Reg::R8, kAttrData);   // r8 = cursor
  a.add64(Reg::R7, Reg::R8);     // r7 = end
  a.mov64(Reg::R9, 0);           // r9 = origin candidate

  a.place(seg_loop);
  a.mov64(Reg::R1, Reg::R8);
  a.add64(Reg::R1, 2);
  a.jgt(Reg::R1, Reg::R7, path_done);  // no full segment header left
  a.ldxb(Reg::R2, Reg::R8, 0);         // segment type
  a.ldxb(Reg::R3, Reg::R8, 1);         // member count
  a.add64(Reg::R8, 2);
  a.jeq(Reg::R2, 2, seg_set);
  // AS_SET: the origin is ambiguous (RFC 6811 treats it as unverifiable).
  a.mov64(Reg::R9, 0);
  a.ja(seg_advance);
  a.place(seg_set);
  a.jeq(Reg::R3, 0, seg_advance);
  a.mov64(Reg::R4, Reg::R3);
  a.sub64(Reg::R4, 1);
  a.lsh64(Reg::R4, 2);
  a.add64(Reg::R4, Reg::R8);
  a.ldxw(Reg::R9, Reg::R4, 0);
  a.to_be(Reg::R9, 32);               // wire big-endian -> host value
  a.place(seg_advance);
  a.lsh64(Reg::R3, 2);
  a.add64(Reg::R8, Reg::R3);
  a.ja(seg_loop);

  a.place(path_done);
  a.jeq(Reg::R9, 0, not_found);

  // Announced prefix -> map key.
  a.mov64(Reg::R1, arg::kPrefix);
  a.call(helper::kGetArg);
  a.jeq(Reg::R0, 0, yield);
  a.ldxw(Reg::R2, Reg::R0, kPrefixAddr);
  a.lsh64(Reg::R2, 8);
  a.ldxb(Reg::R7, Reg::R0, kPrefixLen);
  a.or64(Reg::R2, Reg::R7);
  a.mov64(Reg::R1, kMapId);
  a.mov64(Reg::R3, 0);
  a.call(helper::kMapLookup);
  a.jeq(Reg::R0, 0, not_found);

  // value = (roa_origin << 8) | max_len
  a.mov64(Reg::R2, Reg::R0);
  a.rsh64(Reg::R2, 8);
  a.and64(Reg::R0, 0xFF);
  a.jne(Reg::R2, Reg::R9, invalid);   // origin mismatch
  a.jgt(Reg::R7, Reg::R0, invalid);   // announced prefix longer than max_len
  a.mov64(Reg::R1, static_cast<std::int32_t>(kMetaOvValid));
  a.ja(set_meta);
  a.place(invalid);
  a.mov64(Reg::R1, static_cast<std::int32_t>(kMetaOvInvalid));
  a.ja(set_meta);
  a.place(not_found);
  a.mov64(Reg::R1, static_cast<std::int32_t>(kMetaOvNotFound));
  a.place(set_meta);
  a.call(helper::kSetRouteMeta);

  // "checks the validity ... but does not discard the invalid ones".
  a.place(yield);
  emit_next(a);
  return a.build("ov_inbound");
}

xbgp::Manifest origin_validation_manifest(std::size_t roa_count) {
  // Both bytecodes share one group so ov_inbound sees the hash table that
  // ov_init built in the group's persistent state.
  Manifest m;
  m.attach("ov_init", Op::kInit, ov_init_program(), /*order=*/0, roa_count,
           "origin_validation");
  m.attach("ov_inbound", Op::kInboundFilter, ov_inbound_program(), /*order=*/0, roa_count,
           "origin_validation");
  return m;
}

}  // namespace xb::ext
