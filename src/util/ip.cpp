#include "util/ip.hpp"

#include <cstdio>
#include <stdexcept>

namespace xb::util {

Ipv4Addr Ipv4Addr::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  int matched = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("bad IPv4 address: " + text);
  }
  return Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                  static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::str() const {
  char out[16];
  std::snprintf(out, sizeof(out), "%u.%u.%u.%u", (addr_ >> 24) & 0xFF, (addr_ >> 16) & 0xFF,
                (addr_ >> 8) & 0xFF, addr_ & 0xFF);
  return out;
}

Prefix Prefix::parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) throw std::invalid_argument("missing '/' in prefix: " + text);
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  int len = std::stoi(text.substr(slash + 1));
  if (len < 0 || len > 32) throw std::invalid_argument("bad prefix length: " + text);
  return Prefix(addr, static_cast<std::uint8_t>(len));
}

std::string Prefix::str() const {
  return addr().str() + "/" + std::to_string(len_);
}

}  // namespace xb::util
