// Deterministic pseudo-random number generation for workload synthesis.
//
// Benchmarks and tests need reproducible streams across runs and platforms,
// so we use a fixed xoshiro256** implementation rather than std::mt19937
// (whose distributions are not guaranteed identical across libraries).
#pragma once

#include <cstdint>

namespace xb::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  constexpr std::uint64_t next() noexcept {
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the modulo bias negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) noexcept { return unit() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace xb::util
