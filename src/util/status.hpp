// The typed error spine: one Status/Result currency for every failure path.
//
// A Status carries an ErrorClass (how severe / how to degrade) plus the
// RFC 4271 NOTIFICATION triple (code, subcode, offending data) so any layer
// can turn an error into the exact wire NOTIFICATION without re-deriving it.
// The ok state is a null payload pointer: constructing, copying and testing
// a successful Status costs one pointer, which keeps the decode hot path
// allocation-free. Result<T> is the value-or-Status companion with an
// optional-like surface (has_value / operator* / operator->).
//
// ErrorClass encodes the RFC 7606 degradation tiers directly so classification
// done in the codec survives unchanged up through session and engine layers:
// attribute-discard < treat-as-withdraw < session-reset. kIncomplete is the
// non-error "need more bytes" signal framing uses; kFault is the extension
// (VMM) taxonomy's umbrella class.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace xb::util {

enum class ErrorClass : std::uint8_t {
  kNone = 0,          // success
  kIncomplete = 1,    // not enough input yet; retry with more bytes
  kAttributeDiscard = 2,  // RFC 7606: drop the attribute, keep the route
  kTreatAsWithdraw = 3,   // RFC 7606: treat the UPDATE's NLRI as withdrawn
  kSessionReset = 4,      // RFC 4271: NOTIFICATION + session teardown
  kFault = 5,             // extension execution fault (VMM taxonomy)
};

[[nodiscard]] constexpr const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kNone: return "ok";
    case ErrorClass::kIncomplete: return "incomplete";
    case ErrorClass::kAttributeDiscard: return "attribute-discard";
    case ErrorClass::kTreatAsWithdraw: return "treat-as-withdraw";
    case ErrorClass::kSessionReset: return "session-reset";
    case ErrorClass::kFault: return "fault";
  }
  return "?";
}

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is success.
  Status() noexcept = default;

  /// An error Status. `code`/`subcode` are the raw NOTIFICATION error code and
  /// subcode (util does not depend on bgp; callers cast their enums down).
  /// `data` holds the offending bytes for the NOTIFICATION data field.
  static Status error(ErrorClass cls, std::uint8_t code, std::uint8_t subcode,
                      std::string message, std::vector<std::uint8_t> data = {}) {
    Status s;
    s.payload_ = std::make_shared<const Payload>(
        Payload{cls, code, subcode, std::move(message), std::move(data)});
    return s;
  }

  /// The framing-layer "need more bytes" signal. Not a protocol error: it
  /// carries no NOTIFICATION triple and callers wait for more input.
  static Status incomplete() {
    static const Status s = error(ErrorClass::kIncomplete, 0, 0, "incomplete");
    return s;
  }

  [[nodiscard]] bool ok() const noexcept { return payload_ == nullptr; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] ErrorClass error_class() const noexcept {
    return payload_ ? payload_->cls : ErrorClass::kNone;
  }
  [[nodiscard]] std::uint8_t code() const noexcept {
    return payload_ ? payload_->code : 0;
  }
  [[nodiscard]] std::uint8_t subcode() const noexcept {
    return payload_ ? payload_->subcode : 0;
  }
  [[nodiscard]] const std::string& message() const noexcept {
    static const std::string empty;
    return payload_ ? payload_->message : empty;
  }
  /// Offending bytes for the NOTIFICATION data field (RFC 4271 §6.3).
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    static const std::vector<std::uint8_t> empty;
    return payload_ ? payload_->data : empty;
  }

  [[nodiscard]] bool is_incomplete() const noexcept {
    return error_class() == ErrorClass::kIncomplete;
  }

 private:
  struct Payload {
    ErrorClass cls = ErrorClass::kNone;
    std::uint8_t code = 0;
    std::uint8_t subcode = 0;
    std::string message;
    std::vector<std::uint8_t> data;
  };
  // shared_ptr<const ...> makes Status cheap to copy and immutable after
  // construction; the ok case never allocates.
  std::shared_ptr<const Payload> payload_;
};

/// Value-or-Status. Mirrors std::optional's access surface so call sites that
/// previously consumed optional<T> (`has_value()`, `*r`, `r->field`) compile
/// unchanged, while error paths gain the full Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  [[nodiscard]] bool ok() const noexcept { return has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& operator*() & noexcept { return *value_; }
  [[nodiscard]] const T& operator*() const& noexcept { return *value_; }
  [[nodiscard]] T&& operator*() && noexcept { return *std::move(value_); }
  [[nodiscard]] T* operator->() noexcept { return &*value_; }
  [[nodiscard]] const T* operator->() const noexcept { return &*value_; }
  [[nodiscard]] T& value() & noexcept { return *value_; }
  [[nodiscard]] const T& value() const& noexcept { return *value_; }
  [[nodiscard]] T&& value() && noexcept { return *std::move(value_); }

  /// Success: an ok Status. Failure: the error that produced this Result.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace xb::util
