// Fixed-size fork-join worker pool for the sharded UPDATE pipeline.
//
// The engine stays a deterministic single-threaded event loop; parallelism
// is confined to bounded fork-join regions inside one loop event (a batch
// drain or an export flush). run_indexed() hands out indices [0, n) to the
// workers *and the calling thread*, and returns only when every index has
// completed — so everything that happened inside the region happens-before
// the code after the call, and no worker ever touches engine state between
// regions.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xb::util {

class ThreadPool {
 public:
  /// Fork-join accounting, maintained by the calling thread only (updated
  /// after the join, read between regions — no synchronisation needed).
  struct Stats {
    std::uint64_t regions = 0;        // run_indexed() calls that did work
    std::uint64_t indices = 0;        // total indices dispatched
    std::uint64_t region_ns = 0;      // cumulative wall time inside regions
    std::uint64_t max_region_ns = 0;  // slowest single region
    std::uint64_t max_indices = 0;    // widest single region (peak depth)
  };

  /// Spawns `workers` threads. Zero workers is valid: run_indexed() then
  /// executes everything inline on the calling thread.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes fn(i) exactly once for every i in [0, n), distributed over the
  /// workers and the calling thread, and blocks until all invocations have
  /// returned. The first exception thrown by any invocation is rethrown on
  /// the caller after the join (remaining indices still run).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Caller-thread only, between regions.
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;  // next index to hand out (guarded by mu_)
    std::size_t done = 0;  // completed invocations (guarded by mu_)
  };

  void worker_loop();
  /// Runs job indices until none remain; returns with mu_ held by `lock`.
  void drain(Job& job, std::unique_lock<std::mutex>& lock);
  void note_region(std::size_t n, std::uint64_t elapsed_ns) noexcept;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new job generation exists
  std::condition_variable done_cv_;  // caller: all indices of this job done
  std::uint64_t generation_ = 0;
  Job* job_ = nullptr;
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  Stats stats_;
};

}  // namespace xb::util
