// Minimal leveled, component-tagged logger.
//
// Hosts and the VMM report extension faults and protocol events through this
// sink. Every message carries a component tag ("vmm", "engine", "session",
// "rtr", ...) so log output and the obs telemetry exposition interleave
// cleanly and can be filtered per subsystem: the global threshold gates
// everything, and set_component_threshold() overrides it for one tag. Tests
// install a capturing sink to assert on notifications (e.g. "VMM fell back
// to native code after extension fault").
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace xb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(LogLevel level);

inline constexpr std::string_view kDefaultLogComponent = "main";

/// Process-wide log configuration. Single-threaded by design (the simulator
/// runs one event loop); not synchronised.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  const std::string& msg)>;

  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }
  static Sink& sink() {
    static Sink s;  // empty -> stderr "[LEVEL] [component] msg"
    return s;
  }

  /// Per-component override of the global threshold; e.g. turn on kDebug for
  /// "vmm" alone while everything else stays at kWarn.
  static void set_component_threshold(std::string_view component, LogLevel level);
  static void clear_component_threshold(std::string_view component);
  static void clear_component_thresholds();

  [[nodiscard]] static bool enabled(LogLevel level, std::string_view component);

  static void write(LogLevel level, std::string_view component,
                    const std::string& msg);
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

/// A component-tagged handle; cheap to construct, usually a file-local
/// constant: `constexpr util::Logger kLog{"vmm"};  kLog.warn("...");`
class Logger {
 public:
  constexpr explicit Logger(std::string_view component) : component_(component) {}

  [[nodiscard]] constexpr std::string_view component() const { return component_; }

  template <typename... Args>
  void debug(Args&&... args) const {
    log(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    log(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    log(LogLevel::kWarn, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Args&&... args) const {
    log(LogLevel::kError, std::forward<Args>(args)...);
  }

 private:
  template <typename... Args>
  void log(LogLevel level, Args&&... args) const {
    if (Log::enabled(level, component_))
      Log::write(level, component_, detail::concat(std::forward<Args>(args)...));
  }

  std::string_view component_;
};

// Untagged shims (component "main"), kept for call sites with no obvious
// subsystem.
template <typename... Args>
void log_debug(Args&&... args) {
  Logger(kDefaultLogComponent).debug(std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  Logger(kDefaultLogComponent).info(std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  Logger(kDefaultLogComponent).warn(std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  Logger(kDefaultLogComponent).error(std::forward<Args>(args)...);
}

}  // namespace xb::util
