// Minimal leveled logger.
//
// Hosts and the VMM report extension faults and protocol events through this
// sink. Tests install a capturing sink to assert on notifications (e.g. "VMM
// fell back to native code after extension fault").
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace xb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log configuration. Single-threaded by design (the simulator
/// runs one event loop); not synchronised.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }
  static Sink& sink() {
    static Sink s;  // empty -> stderr
    return s;
  }

  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (Log::threshold() <= LogLevel::kDebug)
    Log::write(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (Log::threshold() <= LogLevel::kInfo)
    Log::write(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (Log::threshold() <= LogLevel::kWarn)
    Log::write(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (Log::threshold() <= LogLevel::kError)
    Log::write(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace xb::util
