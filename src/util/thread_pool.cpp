#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace xb::util {

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::drain(Job& job, std::unique_lock<std::mutex>& lock) {
  while (job.next < job.n) {
    const std::size_t index = job.next++;
    lock.unlock();
    try {
      (*job.fn)(index);
    } catch (...) {
      lock.lock();
      if (!first_error_) first_error_ = std::current_exception();
      ++job.done;
      continue;
    }
    lock.lock();
    ++job.done;
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    Job* job = job_;
    if (job == nullptr) continue;
    drain(*job, lock);
    if (job->done == job->n) done_cv_.notify_all();
  }
}

void ThreadPool::run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::uint64_t t0 = steady_ns();
  if (threads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    note_region(n, steady_ns() - t0);
    return;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  std::unique_lock<std::mutex> lock(mu_);
  first_error_ = nullptr;
  job_ = &job;
  ++generation_;
  work_cv_.notify_all();
  drain(job, lock);  // the caller participates
  done_cv_.wait(lock, [&] { return job.done == job.n; });
  job_ = nullptr;
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    note_region(n, steady_ns() - t0);
    std::rethrow_exception(error);
  }
  lock.unlock();
  note_region(n, steady_ns() - t0);
}

void ThreadPool::note_region(std::size_t n, std::uint64_t elapsed_ns) noexcept {
  ++stats_.regions;
  stats_.indices += n;
  stats_.region_ns += elapsed_ns;
  stats_.max_region_ns = std::max(stats_.max_region_ns, elapsed_ns);
  stats_.max_indices = std::max<std::uint64_t>(stats_.max_indices, n);
}

}  // namespace xb::util
