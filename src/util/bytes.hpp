// Endian-safe byte buffer reading and writing.
//
// BGP messages are big-endian on the wire (RFC 4271 §4). ByteWriter and
// ByteReader provide bounds-checked sequential access in network byte order;
// all multi-byte accessors convert to/from host order at the boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace xb::util {

/// Thrown when a read or write would exceed the underlying buffer.
class BufferError : public std::runtime_error {
 public:
  explicit BufferError(const std::string& what) : std::runtime_error(what) {}
};

/// Host <-> network conversions (network order is big-endian).
constexpr std::uint16_t host_to_be16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
constexpr std::uint16_t be16_to_host(std::uint16_t v) noexcept {
  return host_to_be16(v);
}
constexpr std::uint32_t host_to_be32(std::uint32_t v) noexcept {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}
constexpr std::uint32_t be32_to_host(std::uint32_t v) noexcept {
  return host_to_be32(v);
}
constexpr std::uint64_t host_to_be64(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(host_to_be32(static_cast<std::uint32_t>(v))) << 32) |
         host_to_be32(static_cast<std::uint32_t>(v >> 32));
}
constexpr std::uint64_t be64_to_host(std::uint64_t v) noexcept {
  return host_to_be64(v);
}

/// Sequential big-endian writer that appends to an owned byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void fill(std::uint8_t value, std::size_t count) {
    buf_.insert(buf_.end(), count, value);
  }

  /// Overwrite a previously written big-endian u16 at an absolute offset.
  /// Used to patch length fields once a variable-size body is known.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf_.size()) throw BufferError("patch_u16 out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  void patch_u8(std::size_t offset, std::uint8_t v) {
    if (offset >= buf_.size()) throw BufferError("patch_u8 out of range");
    buf_[offset] = v;
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential big-endian reader over a borrowed byte span.
/// The caller must keep the underlying storage alive while reading.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }
  /// Non-throwing bounds probe: true if n more bytes can be read. The
  /// exception-free decode paths check this before every read so the
  /// throwing need() never fires on attacker-controlled input.
  [[nodiscard]] bool has(std::size_t n) const noexcept { return remaining() >= n; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }
  /// A sub-reader over the next n bytes; advances this reader past them.
  ByteReader sub(std::size_t n) { return ByteReader(bytes(n)); }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw BufferError("read of " + std::to_string(n) + " bytes exceeds remaining " +
                        std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace xb::util
