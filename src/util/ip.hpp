// IPv4 address and prefix value types.
//
// Addresses are stored in host byte order internally; `to_be()`/`from_be()`
// convert at wire boundaries. Prefixes are canonicalised: host bits below the
// prefix length are always zero, so value equality equals route equality.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace xb::util {

/// An IPv4 address (host byte order internally).
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) noexcept : addr_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : addr_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses dotted-quad notation; throws std::invalid_argument on bad input.
  static Ipv4Addr parse(const std::string& text);
  static constexpr Ipv4Addr from_be(std::uint32_t network_order) noexcept {
    return Ipv4Addr(((network_order & 0xFFu) << 24) | ((network_order & 0xFF00u) << 8) |
                    ((network_order >> 8) & 0xFF00u) | (network_order >> 24));
  }

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return addr_; }
  [[nodiscard]] constexpr std::uint32_t to_be() const noexcept {
    return ((addr_ & 0xFFu) << 24) | ((addr_ & 0xFF00u) << 8) | ((addr_ >> 8) & 0xFF00u) |
           (addr_ >> 24);
  }
  [[nodiscard]] std::string str() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t addr_ = 0;
};

/// An IPv4 prefix (address + length), canonicalised on construction.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Addr addr, std::uint8_t len) noexcept
      : addr_(mask(addr.value(), len)), len_(len > 32 ? 32 : len) {}

  /// Parses "a.b.c.d/len"; throws std::invalid_argument on bad input.
  static Prefix parse(const std::string& text);

  [[nodiscard]] constexpr Ipv4Addr addr() const noexcept { return Ipv4Addr(addr_); }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return len_; }
  [[nodiscard]] std::string str() const;

  /// True if `other` is equal to or more specific than this prefix.
  [[nodiscard]] constexpr bool covers(const Prefix& other) const noexcept {
    return other.len_ >= len_ && mask(other.addr_, len_) == addr_;
  }
  [[nodiscard]] constexpr bool contains(Ipv4Addr a) const noexcept {
    return mask(a.value(), len_) == addr_;
  }

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  static constexpr std::uint32_t mask(std::uint32_t v, std::uint8_t len) noexcept {
    return len == 0 ? 0 : (len >= 32 ? v : (v & ~((1u << (32 - len)) - 1)));
  }

  std::uint32_t addr_ = 0;
  std::uint8_t len_ = 0;
};

/// Stable shard assignment for the parallel UPDATE pipeline: the same
/// (prefix, shard-count) pair maps to the same shard on every host and at
/// every parallelism level, so pre-sharded workloads and the engine's
/// internal partitioning agree. SplitMix64 finalizer over (addr, len).
[[nodiscard]] constexpr std::size_t prefix_shard(const Prefix& p,
                                                 std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  std::uint64_t x = (static_cast<std::uint64_t>(p.addr().value()) << 8) | p.length();
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards);
}

}  // namespace xb::util

template <>
struct std::hash<xb::util::Ipv4Addr> {
  std::size_t operator()(const xb::util::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<xb::util::Prefix> {
  std::size_t operator()(const xb::util::Prefix& p) const noexcept {
    // Mix length into the high bits so /16 and /24 of the same net differ.
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.length()) << 32) | p.addr().value());
  }
};
