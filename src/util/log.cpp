#include "util/log.hpp"

#include <cstdio>

namespace xb::util {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const std::string& msg) {
  if (sink()) {
    sink()(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace xb::util
