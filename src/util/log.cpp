#include "util/log.hpp"

#include <cstdio>
#include <map>

namespace xb::util {

namespace {
std::map<std::string, LogLevel, std::less<>>& component_thresholds() {
  static std::map<std::string, LogLevel, std::less<>> m;
  return m;
}
}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void Log::set_component_threshold(std::string_view component, LogLevel level) {
  component_thresholds().insert_or_assign(std::string(component), level);
}

void Log::clear_component_threshold(std::string_view component) {
  const auto it = component_thresholds().find(component);
  if (it != component_thresholds().end()) component_thresholds().erase(it);
}

void Log::clear_component_thresholds() { component_thresholds().clear(); }

bool Log::enabled(LogLevel level, std::string_view component) {
  const auto& overrides = component_thresholds();
  if (const auto it = overrides.find(component); it != overrides.end())
    return it->second <= level;
  return threshold() <= level;
}

void Log::write(LogLevel level, std::string_view component, const std::string& msg) {
  if (sink()) {
    sink()(level, component, msg);
    return;
  }
  std::fprintf(stderr, "[%.*s] [%.*s] %s\n",
               static_cast<int>(to_string(level).size()), to_string(level).data(),
               static_cast<int>(component.size()), component.data(), msg.c_str());
}

}  // namespace xb::util
