// Ablation: raw eBPF virtual-machine costs — interpreter dispatch, memory
// bounds checking, helper-call overhead, verifier throughput. These are the
// building blocks of the <20% end-to-end overhead in Fig. 4.
#include <benchmark/benchmark.h>

#include "ebpf/assembler.hpp"
#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"

namespace {

using namespace xb::ebpf;

// Tight ALU loop: measures instructions/second of the interpreter core.
void BM_InterpreterAluLoop(benchmark::State& state) {
  const auto iterations = static_cast<std::int32_t>(state.range(0));
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, iterations);
  a.mov64(Reg::R0, 0);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.add64(Reg::R0, Reg::R6);
  a.xor64(Reg::R0, 12345);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.exit_();
  const Program p = a.build("alu_loop");
  Vm vm;
  vm.set_instruction_budget(1'000'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(p).value);
  }
  state.SetItemsProcessed(state.iterations() * iterations * 5);  // ~5 insns/iter
}
BENCHMARK(BM_InterpreterAluLoop)->Arg(16)->Arg(256)->Arg(4096);

// Bounds-checked loads from the stack region.
void BM_InterpreterMemoryLoop(benchmark::State& state) {
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 256);
  a.stdw(Reg::R10, -8, 42);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.ldxdw(Reg::R0, Reg::R10, -8);
  a.stxdw(Reg::R10, -16, Reg::R0);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.exit_();
  const Program p = a.build("mem_loop");
  Vm vm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(p).value);
  }
  state.SetItemsProcessed(state.iterations() * 512);  // loads + stores
}
BENCHMARK(BM_InterpreterMemoryLoop);

// Cost of one helper call round trip.
void BM_HelperCall(benchmark::State& state) {
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 64);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.call(1);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("helper_loop");
  Vm vm;
  vm.set_helper(1, [](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) { return HelperResult::ok(1); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(p).value);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HelperCall);

// Bare invocation: entry + exit only (per-insertion-point floor).
void BM_VmInvocationFloor(benchmark::State& state) {
  Assembler a;
  a.mov64(Reg::R0, 1);
  a.exit_();
  const Program p = a.build("floor");
  Vm vm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(p).value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmInvocationFloor);

// Verifier throughput on a program of configurable size.
void BM_Verifier(benchmark::State& state) {
  Assembler a;
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    a.add64(Reg::R1, 1);
    auto skip = a.make_label();
    a.jne(Reg::R1, 0, skip);  // forward jump to the next instruction
    a.place(skip);
  }
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("big");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Verifier::verify(p, {}));
  }
  state.SetItemsProcessed(state.iterations() * p.insns().size());
}
BENCHMARK(BM_Verifier)->Arg(64)->Arg(1024);

}  // namespace
