// Ablation: raw eBPF virtual-machine costs — interpreter dispatch, memory
// bounds checking, helper-call overhead, verifier and translator throughput.
// These are the building blocks of the <20% end-to-end overhead in Fig. 4.
//
// Every execution benchmark takes a trailing `tier` argument:
//   /0  tier 0, the decode-per-step reference interpreter,
//   /1  tier 1, the fast engine (pre-decoded IR, direct-threaded dispatch),
//   /2  tier 1 with analyzer-proven bounds-check elision (the fastest
//       interpreted configuration),
//   /3  tier 2, the x86-64 JIT compiled from the elided IR (the production
//       configuration: what the Vmm builds at load time on supported hosts).
// The tier-0 vs tier-1 ratio on the same workload is the interpreted
// dispatch-cost speedup; /1 (or /2) vs /3 is the native-code speedup —
// both recorded in results/vm_overhead_*.txt.
#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <optional>

#include "ebpf/analyzer.hpp"
#include "ebpf/assembler.hpp"
#include "ebpf/ir.hpp"
#include "ebpf/jit.hpp"
#include "ebpf/translator.hpp"
#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"

namespace {

using namespace xb::ebpf;

/// The tier's load-time artifacts; they outlive the run (the Vm only
/// borrows them).
struct TierImage {
  std::optional<IrProgram> ir;
  std::unique_ptr<const JitProgram> jit;
};

/// Builds the benchmarked tier's images for `p`.
TierImage configure_tier(const Program& p, std::int64_t tier,
                         const Analyzer::Options* opts = nullptr) {
  TierImage image;
  if (tier == 0) return image;
  if (tier >= 2) {
    const AnalysisResult analysis =
        opts != nullptr ? Analyzer::analyze(p, p.required_helpers(), *opts)
                        : Analyzer::analyze(p, p.required_helpers());
    image.ir.emplace(Translator::translate(p, analysis.ok() ? &analysis.facts : nullptr));
  } else {
    image.ir.emplace(Translator::translate(p));
  }
  if (tier == 3) {
    Jit::Result jr = Jit::compile(*image.ir);
    if (jr.ok()) image.jit = std::move(jr.program);
  }
  return image;
}

void run_tiered(benchmark::State& state, const Program& p, Vm& vm, std::int64_t tier,
                std::int64_t items_per_run, const Analyzer::Options* opts = nullptr) {
  const TierImage image = configure_tier(p, tier, opts);
  if (tier == 3 && !image.jit) {
    state.SkipWithError("tier-2 JIT unavailable on this host");
    return;
  }
  if (image.ir) {
    vm.set_translated(&*image.ir);
    vm.set_jit(image.jit.get());
    vm.set_exec_mode(image.jit ? ExecMode::kJit : ExecMode::kFast);
  } else {
    vm.set_exec_mode(ExecMode::kReference);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(p).value);
  }
  vm.set_translated(nullptr);
  vm.set_jit(nullptr);
  state.SetItemsProcessed(state.iterations() * items_per_run);
}

// Tight ALU loop: measures instructions/second of the dispatch core. This is
// the per-instruction dispatch-cost benchmark the execution-engine speedup is
// quoted from (items/s = interpreted instructions per second).
void BM_InterpreterAluLoop(benchmark::State& state) {
  const auto iterations = static_cast<std::int32_t>(state.range(0));
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, iterations);
  a.mov64(Reg::R0, 0);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.add64(Reg::R0, Reg::R6);
  a.xor64(Reg::R0, 12345);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.exit_();
  const Program p = a.build("alu_loop");
  Vm vm;
  vm.set_instruction_budget(1'000'000'000);
  run_tiered(state, p, vm, state.range(1), iterations * 5);  // ~5 insns/iter
}
BENCHMARK(BM_InterpreterAluLoop)
    ->Args({16, 0})->Args({16, 1})->Args({16, 3})
    ->Args({256, 0})->Args({256, 1})->Args({256, 3})
    ->Args({4096, 0})->Args({4096, 1})->Args({4096, 3});

// Bounds-checked loads/stores on the stack region. Tier 2 runs the same
// program with the analyzer's stack proofs applied, so every access in the
// loop body skips the MemoryModel probe.
void BM_InterpreterMemoryLoop(benchmark::State& state) {
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 256);
  a.stdw(Reg::R10, -8, 42);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.ldxdw(Reg::R0, Reg::R10, -8);
  a.stxdw(Reg::R10, -16, Reg::R0);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.exit_();
  const Program p = a.build("mem_loop");
  Vm vm;
  run_tiered(state, p, vm, state.range(0), 512);  // loads + stores
}
BENCHMARK(BM_InterpreterMemoryLoop)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Bounds-checked loads/stores through a helper-returned object. Tier 2 runs
// with the region-domain proofs applied: the accesses sit behind a null
// check and inside the helper's contract extent, so the MemoryModel probe is
// elided on every iteration — the ctx/attribute-buffer analogue of the
// stack elision above.
void BM_InterpreterObjectMemoryLoop(benchmark::State& state) {
  Assembler a;
  auto ok = a.make_label();
  auto loop = a.make_label();
  auto out = a.make_label();
  a.call(1);  // contract: 4096-byte writable object, may be NULL
  a.jne(Reg::R0, 0, ok);
  a.mov64(Reg::R0, 0);
  a.exit_();
  a.place(ok);
  a.mov64(Reg::R7, Reg::R0);
  a.mov64(Reg::R6, 256);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.ldxdw(Reg::R0, Reg::R7, 0);
  a.stxdw(Reg::R7, 8, Reg::R0);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("obj_loop");

  static std::array<std::uint8_t, 4096> scratch{};
  Vm vm;
  vm.memory().add_region(scratch.data(), scratch.size(), /*writable=*/true, "scratch");
  const std::uint64_t base = reinterpret_cast<std::uintptr_t>(scratch.data());
  vm.set_helper(1, [base](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                          std::uint64_t) { return HelperResult::ok(base); });

  Analyzer::Options opts;
  opts.helper_arity = {{1, 0}};
  HelperContract contract;
  contract.returns_pointer = true;
  contract.region = Region::kCtx;
  contract.extent = static_cast<std::uint32_t>(scratch.size());
  contract.writable = true;
  opts.helper_contracts = {{1, contract}};
  run_tiered(state, p, vm, state.range(0), 512, &opts);  // loads + stores
}
BENCHMARK(BM_InterpreterObjectMemoryLoop)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Cost of one helper call round trip (dominated by the std::function hop,
// identical across tiers — the fast tier only trims the dispatch around it).
void BM_HelperCall(benchmark::State& state) {
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 64);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.call(1);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("helper_loop");
  Vm vm;
  vm.set_helper(1, [](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) { return HelperResult::ok(1); });
  run_tiered(state, p, vm, state.range(0), 64);
}
BENCHMARK(BM_HelperCall)->Arg(0)->Arg(1)->Arg(3);

// Bare invocation: entry + exit only (per-insertion-point floor).
void BM_VmInvocationFloor(benchmark::State& state) {
  Assembler a;
  a.mov64(Reg::R0, 1);
  a.exit_();
  const Program p = a.build("floor");
  Vm vm;
  run_tiered(state, p, vm, state.range(0), 1);
}
BENCHMARK(BM_VmInvocationFloor)->Arg(0)->Arg(1)->Arg(3);

// Verifier throughput on a program of configurable size.
void BM_Verifier(benchmark::State& state) {
  Assembler a;
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    a.add64(Reg::R1, 1);
    auto skip = a.make_label();
    a.jne(Reg::R1, 0, skip);  // forward jump to the next instruction
    a.place(skip);
  }
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("big");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Verifier::verify(p, {}));
  }
  state.SetItemsProcessed(state.iterations() * p.insns().size());
}
BENCHMARK(BM_Verifier)->Arg(64)->Arg(1024);

// Translator throughput: the one-time load cost of the fast tier, in source
// instructions per second (amortised over every subsequent execution).
void BM_Translate(benchmark::State& state) {
  Assembler a;
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    a.add64(Reg::R1, 1);
    auto skip = a.make_label();
    a.jne(Reg::R1, 0, skip);
    a.place(skip);
  }
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("big");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Translator::translate(p).insns.size());
  }
  state.SetItemsProcessed(state.iterations() * p.insns().size());
}
BENCHMARK(BM_Translate)->Arg(64)->Arg(1024);

}  // namespace
