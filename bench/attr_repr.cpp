// Ablation: host attribute representations — the mechanism behind the
// xFir/xBIRD asymmetry in Fig. 4. Fir (FRR-like) decomposes attributes into
// host-order structs: cheap accessors, expensive neutral-form conversion at
// the xBGP API boundary. Wren (BIRD-like) keeps wire blobs: near-free
// conversion, costlier accessors.
#include <benchmark/benchmark.h>

#include "bgp/codec.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_core.hpp"
#include "hosts/wren/wren_core.hpp"

namespace {

using namespace xb;
using hosts::fir::FirCore;
using hosts::wren::WrenCore;

const std::vector<bgp::AttributeSet>& neutral_sets() {
  static const std::vector<bgp::AttributeSet> sets = [] {
    harness::WorkloadParams params;
    params.route_count = 20'000;
    const auto w = harness::make_workload(params);
    std::vector<bgp::AttributeSet> out;
    for (const auto& wire : w.updates) {
      const auto frame = bgp::try_frame(wire);
      out.push_back(bgp::decode_update(frame->body)->attrs);
    }
    return out;
  }();
  return sets;
}

template <typename Core>
void BM_FromWire(benchmark::State& state) {
  const auto& sets = neutral_sets();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Core::from_wire(sets[i++ % sets.size()], {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FromWire<FirCore>)->Name("BM_FromWire/Fir");
BENCHMARK(BM_FromWire<WrenCore>)->Name("BM_FromWire/Wren");

template <typename Core>
void BM_GetAttrNeutral(benchmark::State& state) {
  // The xBGP get_attr path: internal representation -> neutral wire form.
  const auto& sets = neutral_sets();
  std::vector<typename Core::Attrs> attrs;
  for (const auto& s : sets) attrs.push_back(Core::from_wire(s, {}));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = attrs[i++ % attrs.size()];
    benchmark::DoNotOptimize(Core::get_attr(a, bgp::attr_code::kAsPath));
    benchmark::DoNotOptimize(Core::get_attr(a, bgp::attr_code::kNextHop));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_GetAttrNeutral<FirCore>)->Name("BM_GetAttrNeutral/Fir");
BENCHMARK(BM_GetAttrNeutral<WrenCore>)->Name("BM_GetAttrNeutral/Wren");

template <typename Core>
void BM_DecisionAccessors(benchmark::State& state) {
  // What the decision process reads per candidate route.
  const auto& sets = neutral_sets();
  std::vector<typename Core::Attrs> attrs;
  for (const auto& s : sets) attrs.push_back(Core::from_wire(s, {}));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = attrs[i++ % attrs.size()];
    benchmark::DoNotOptimize(Core::local_pref_or(a, 100));
    benchmark::DoNotOptimize(Core::as_path_length(a));
    benchmark::DoNotOptimize(Core::origin(a));
    benchmark::DoNotOptimize(Core::med(a));
    benchmark::DoNotOptimize(Core::first_asn(a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionAccessors<FirCore>)->Name("BM_DecisionAccessors/Fir");
BENCHMARK(BM_DecisionAccessors<WrenCore>)->Name("BM_DecisionAccessors/Wren");

template <typename Core>
void BM_EncodeNative(benchmark::State& state) {
  const auto& sets = neutral_sets();
  std::vector<typename Core::Attrs> attrs;
  for (const auto& s : sets) attrs.push_back(Core::from_wire(s, {}));
  std::size_t i = 0;
  for (auto _ : state) {
    util::ByteWriter w;
    Core::encode_native(attrs[i++ % attrs.size()], w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeNative<FirCore>)->Name("BM_EncodeNative/Fir");
BENCHMARK(BM_EncodeNative<WrenCore>)->Name("BM_EncodeNative/Wren");

}  // namespace
