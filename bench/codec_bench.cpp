// Ablation: message codec throughput — the substrate cost every experiment
// pays for each UPDATE on the wire.
#include <benchmark/benchmark.h>

#include "bgp/codec.hpp"
#include "harness/workload.hpp"

namespace {

using namespace xb;

const harness::Workload& workload() {
  static const harness::Workload w = [] {
    harness::WorkloadParams params;
    params.route_count = 50'000;
    return harness::make_workload(params);
  }();
  return w;
}

void BM_DecodeUpdate(benchmark::State& state) {
  const auto& w = workload();
  std::size_t i = 0;
  std::size_t prefixes = 0;
  for (auto _ : state) {
    const auto& wire = w.updates[i++ % w.updates.size()];
    const auto frame = bgp::try_frame(wire);
    auto update = *bgp::decode_update(frame->body);
    prefixes += update.nlri.size();
    benchmark::DoNotOptimize(update);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(prefixes));
}
BENCHMARK(BM_DecodeUpdate);

void BM_EncodeUpdate(benchmark::State& state) {
  const auto& w = workload();
  // Pre-decode a pool of updates to re-encode.
  std::vector<bgp::UpdateMessage> updates;
  for (std::size_t i = 0; i < 512 && i < w.updates.size(); ++i) {
    const auto frame = bgp::try_frame(w.updates[i]);
    updates.push_back(*bgp::decode_update(frame->body));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::encode_update(updates[i++ % updates.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeUpdate);

void BM_FrameScan(benchmark::State& state) {
  const auto& w = workload();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::try_frame(w.updates[i++ % w.updates.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameScan);

}  // namespace
