// Fig. 4 (right series): performance impact of running RPKI origin
// validation as extension bytecode versus each host's native implementation.
//
// Reproduces §3.4: the Fig. 3 testbed with eBGP on L1/L2; the DUT loads a
// ROA set under which 75% of the injected prefixes are Valid, and checks the
// validity of the origin of each prefix without discarding invalid ones.
//
//   ./fig4_origin_validation [routes] [runs]    (e.g. 724000 15)
//
// Expected shape (paper): on BIRD/Wren the extension performs like native
// code; on FRRouting/Fir the extension is ~10% FASTER than native, because
// native Fir walks a ROA trie per prefix while the extension uses a hash
// table "as in BIRD".

#include <cstdio>
#include <cstdlib>

#include "extensions/origin_validation.hpp"
#include "rpki/roa_lpfst.hpp"
#include "rpki/rtr_client.hpp"
#include "harness/stats.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

using namespace xb;

namespace {

const bgp::policy::RouteMap& export_policy() {
  static const auto map = bgp::policy::standard_export_policy();
  return map;
}

template <typename Dut>
double one_run(const harness::Workload& workload, const std::vector<rpki::Roa>& roas,
               const std::vector<std::uint8_t>& roa_blob, bool use_extension,
               const bgp::policy::RouteMap& import_map) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename Dut::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  // Native mode: `match rpki` in the import route-map (FRR-style; BIRD's
  // filter roa_check is the analogous interpreted-filter builtin).
  // Extension mode: the same baseline policy without the rpki clause; the
  // extension performs validation at the insertion point.
  cfg.import_policy = &import_map;
  cfg.export_policy = &export_policy();
  Dut dut(loop, cfg);
  if (use_extension) {
    dut.set_xtra(xbgp::xtra::kRoaTable, roa_blob);
    dut.load_extensions(ext::origin_validation_manifest(roas.size()));
  }
  harness::Testbed<Dut> bed(loop, dut, plan);
  bed.establish();
  return bed.run(workload, workload.prefix_count);
}

template <typename Dut>
void measure(const char* label, const char* native_structure,
             const harness::Workload& workload, const std::vector<rpki::Roa>& roas,
             const std::vector<std::uint8_t>& roa_blob, const rpki::RoaTable* native_table,
             std::size_t runs) {
  const auto native_import = bgp::policy::standard_import_policy(native_table);
  const auto plain_import = bgp::policy::standard_import_policy();
  // Untimed warm-up of both configurations.
  (void)one_run<Dut>(workload, roas, roa_blob, false, native_import);
  (void)one_run<Dut>(workload, roas, roa_blob, true, plain_import);
  std::vector<double> native, extension;
  for (std::size_t i = 0; i < runs; ++i) {
    native.push_back(one_run<Dut>(workload, roas, roa_blob, false, native_import));
    extension.push_back(one_run<Dut>(workload, roas, roa_blob, true, plain_import));
  }
  const auto native_box = harness::boxplot(native);
  const auto rel = harness::relative_impact(extension, native_box.median);
  const auto box = harness::boxplot(rel);
  std::printf("%-10s (native: %-4s) native median %7.3fs | rel impact %%: min %+6.1f "
              "q1 %+6.1f median %+6.1f q3 %+6.1f max %+6.1f\n",
              label, native_structure, native_box.median, box.min, box.q1, box.median,
              box.q3, box.max);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t routes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50'000;
  const std::size_t runs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  harness::WorkloadParams params;
  params.route_count = routes;
  const auto workload = harness::make_workload(params);

  rpki::RoaSetParams roa_params;  // 75% valid
  const auto roas = rpki::make_roa_set(workload.routes, roa_params);
  const auto roa_blob = harness::pack_roa_blob(roas);

  rpki::LpfstRoaTable trie;  // FRRouting's structure (rtrlib re-descent model)...
  rpki::LockedRoaTable locked_trie(trie);  // ...behind the rtrlib lock/convert layer
  rpki::RoaHashTable hash;   // BIRD's structure
  rpki::fill_table(trie, roas);
  rpki::fill_table(hash, roas);

  std::printf("Fig. 4 — Origin Validation: extension bytecode vs native code\n");
  std::printf("testbed: upstream -> DUT -> downstream, eBGP, %zu routes, %zu ROAs "
              "(75%% valid), %zu runs\n",
              workload.prefix_count, roas.size(), runs);
  std::printf("paper: xBIRD ~= native; xFRR ~10%% FASTER than native (hash vs trie)\n\n");

  measure<hosts::fir::FirRouter>("xFir", "trie", workload, roas, roa_blob, &locked_trie, runs);
  measure<hosts::wren::WrenRouter>("xWren", "hash", workload, roas, roa_blob, &hash, runs);
  return 0;
}
