// Sharded parallel UPDATE pipeline: routes/sec at 1/2/4/8 shards.
//
// The Fig. 3 testbed (upstream -> DUT -> downstream) with the DUT running
// the parallel pipeline at increasing shard counts, for the two
// measurement-heavy paper use cases running as extension bytecode:
//
//   RR — route reflection (iBGP both links), inbound+outbound+encode chains
//   OV — origin validation (eBGP both links), init+inbound chains
//
// The pipeline is bit-deterministic at every shard count (see
// docs/parallel_pipeline.md and tests/parallel_pipeline_test.cpp), so the
// series below measures pure throughput: the feed is pre-sharded with
// harness::shard_workload so every UPDATE's NLRI land in one shard.
//
//   ./pipeline_scaling [routes] [runs] [tier]     (e.g. 200000 5 fast)
//
// `tier` selects the eBPF execution engine for every extension: `fast`
// (default — pre-decoded IR, direct-threaded dispatch) or `ref` (tier-0
// reference interpreter). Running both pins the engine's contribution in
// results/pipeline_scaling_*.txt.
//
// Expected shape: >= 2x routes/sec at 4 shards vs 1 on multi-core hardware.
// The run warns when the machine has fewer cores than shards — workers then
// time-slice one core and the speedup cannot materialise.

#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <vector>

#include "extensions/origin_validation.hpp"
#include "extensions/route_reflection.hpp"
#include "harness/stats.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

using namespace xb;

namespace {

constexpr std::size_t kShardSeries[] = {1, 2, 4, 8};

ebpf::ExecMode g_exec_mode = ebpf::ExecMode::kFast;

const bgp::policy::RouteMap& import_policy() {
  static const auto map = bgp::policy::standard_import_policy();
  return map;
}
const bgp::policy::RouteMap& export_policy() {
  static const auto map = bgp::policy::standard_export_policy();
  return map;
}

struct UseCase {
  const char* name;
  bool ibgp = true;
  const std::vector<rpki::Roa>* roas = nullptr;
  const std::vector<std::uint8_t>* roa_blob = nullptr;
};

template <typename Dut>
double one_run(const harness::Workload& base, const UseCase& uc, std::size_t shards) {
  net::EventLoop loop;
  const auto plan = uc.ibgp ? harness::TestbedPlan::ibgp_plan()
                            : harness::TestbedPlan::ebgp_plan();
  typename Dut::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = shards;
  cfg.vmm_options.exec_mode = g_exec_mode;
  cfg.import_policy = &import_policy();
  cfg.export_policy = &export_policy();
  Dut dut(loop, cfg);
  if (uc.roas != nullptr) {
    dut.set_xtra(xbgp::xtra::kRoaTable, *uc.roa_blob);
    dut.load_extensions(ext::origin_validation_manifest(uc.roas->size()));
  } else {
    dut.load_extensions(ext::route_reflection_manifest());
  }
  harness::Testbed<Dut> bed(loop, dut, plan);
  bed.establish();

  // Pre-sharded feed: each message's NLRI all belong to one pipeline shard.
  harness::Workload feed;
  feed.updates = harness::shard_workload(base, shards).interleaved();
  feed.prefix_count = base.prefix_count;
  return bed.run(feed, feed.prefix_count);
}

template <typename Dut>
void measure(const char* host, const harness::Workload& workload, const UseCase& uc,
             std::size_t runs) {
  double base_median = 0.0;
  for (std::size_t shards : kShardSeries) {
    (void)one_run<Dut>(workload, uc, shards);  // untimed warm-up
    std::vector<double> times;
    times.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) {
      times.push_back(one_run<Dut>(workload, uc, shards));
    }
    const auto box = harness::boxplot(times);
    if (shards == 1) base_median = box.median;
    const double rps = static_cast<double>(workload.prefix_count) / box.median;
    std::printf("%-6s %-3s shards=%zu  median %7.3fs  %10.0f routes/s  speedup %5.2fx\n",
                host, uc.name, shards, box.median, rps, base_median / box.median);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t routes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50'000;
  const std::size_t runs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  if (argc > 3 && std::string_view(argv[3]) == "ref") {
    g_exec_mode = ebpf::ExecMode::kReference;
  }

  harness::WorkloadParams ibgp_params;
  ibgp_params.route_count = routes;
  ibgp_params.with_local_pref = true;
  const auto ibgp_workload = harness::make_workload(ibgp_params);

  harness::WorkloadParams ebgp_params;
  ebgp_params.route_count = routes;
  const auto ebgp_workload = harness::make_workload(ebgp_params);

  rpki::RoaSetParams roa_params;  // 75% valid
  const auto roas = rpki::make_roa_set(ebgp_workload.routes, roa_params);
  const auto roa_blob = harness::pack_roa_blob(roas);

  const unsigned cores = std::thread::hardware_concurrency();
  std::size_t max_shards = 0;
  for (std::size_t s : kShardSeries) max_shards = s > max_shards ? s : max_shards;

  std::printf("Parallel UPDATE pipeline scaling — routes/sec vs shard count\n");
  std::printf("testbed: upstream -> DUT -> downstream, %zu routes, %zu runs, %u cores, %s tier\n",
              routes, runs, cores,
              g_exec_mode == ebpf::ExecMode::kFast ? "fast" : "reference");
  if (cores < max_shards) {
    std::printf("SINGLE-CORE WARNING: only %u hardware thread%s for up to %zu shards —\n"
                "workers will time-slice and the parallel speedup cannot show on this\n"
                "machine; treat the multi-shard rows below as dispatch-overhead data only.\n",
                cores, cores == 1 ? "" : "s", max_shards);
  }
  std::printf("\n");

  const UseCase rr{"RR", /*ibgp=*/true, nullptr, nullptr};
  const UseCase ov{"OV", /*ibgp=*/false, &roas, &roa_blob};
  measure<hosts::fir::FirRouter>("xFir", ibgp_workload, rr, runs);
  measure<hosts::wren::WrenRouter>("xWren", ibgp_workload, rr, runs);
  measure<hosts::fir::FirRouter>("xFir", ebgp_workload, ov, runs);
  measure<hosts::wren::WrenRouter>("xWren", ebgp_workload, ov, runs);
  return 0;
}
