// Fig. 4 (left series): performance impact of running BGP route reflection
// as extension bytecode versus native code, on both host implementations.
//
// Reproduces §3.2: the Fig. 3 testbed (upstream -> DUT -> downstream, iBGP
// on both links), a full-table feed, measuring the delay between the first
// announcement and the last prefix arriving downstream. The paper reports
// the relative impact of extension vs native over 15 runs at 724k routes;
// defaults here are scaled for CI-sized machines and can be raised:
//
//   ./fig4_route_reflection [routes] [runs]     (e.g. 724000 15)
//
// Expected shape: extension slower than native on both hosts but within
// +20%; xFir overhead above xWren's because Fir converts representations at
// the API boundary (paper §2.1).

#include <cstdio>
#include <cstdlib>

#include "extensions/route_reflection.hpp"
#include "harness/stats.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

using namespace xb;

namespace {

/// Baseline per-neighbour policy, present in BOTH modes (production routers
/// always evaluate route-maps/filters; only the reflection logic differs).
const bgp::policy::RouteMap& import_policy() {
  static const auto map = bgp::policy::standard_import_policy();
  return map;
}
const bgp::policy::RouteMap& export_policy() {
  static const auto map = bgp::policy::standard_export_policy();
  return map;
}

template <typename Dut>
double one_run(const harness::Workload& workload, bool use_extension) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename Dut::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.native_route_reflector = !use_extension;
  cfg.import_policy = &import_policy();
  cfg.export_policy = &export_policy();
  Dut dut(loop, cfg);
  if (use_extension) dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<Dut> bed(loop, dut, plan);
  bed.establish();
  return bed.run(workload, workload.prefix_count);
}

template <typename Dut>
void measure(const char* label, const harness::Workload& workload, std::size_t runs) {
  // Untimed warm-up of both configurations (first-touch page faults, cache
  // warm-up) so the timed runs compare steady states.
  (void)one_run<Dut>(workload, false);
  (void)one_run<Dut>(workload, true);
  std::vector<double> native, extension;
  for (std::size_t i = 0; i < runs; ++i) {
    native.push_back(one_run<Dut>(workload, false));
    extension.push_back(one_run<Dut>(workload, true));
  }
  const auto native_box = harness::boxplot(native);
  const auto rel = harness::relative_impact(extension, native_box.median);
  const auto box = harness::boxplot(rel);
  std::printf("%-10s native median %7.3fs | rel impact %%: min %+6.1f q1 %+6.1f "
              "median %+6.1f q3 %+6.1f max %+6.1f\n",
              label, native_box.median, box.min, box.q1, box.median, box.q3, box.max);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t routes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50'000;
  const std::size_t runs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  harness::WorkloadParams params;
  params.route_count = routes;
  params.with_local_pref = true;  // iBGP feed
  const auto workload = harness::make_workload(params);

  std::printf("Fig. 4 — Route Reflectors: extension bytecode vs native code\n");
  std::printf("testbed: upstream -> DUT -> downstream, iBGP, %zu routes, %zu runs\n",
              workload.prefix_count, runs);
  std::printf("paper: 724k routes, 15 runs; extension within +20%% on both hosts\n\n");

  measure<hosts::fir::FirRouter>("xFir", workload, runs);
  measure<hosts::wren::WrenRouter>("xWren", workload, runs);
  return 0;
}
