// Export fan-out: encode work of the RibOut peer-group engine vs the
// per-peer baseline under full-table churn into a large peer fleet.
//
// One DUT learns a seeded synthetic table from an eBGP feeder and exports
// it to N peers split across four policy classes (iBGP reflector clients,
// iBGP with nexthop-self, and two distinct eBGP neighbour ASes) — the
// classes the RibOut engine keys groups on. After the announce wave a
// withdraw/re-announce churn wave replays a slice of the table. Both
// engines send every peer the same routes; they differ in how many UPDATE
// messages they *encode*:
//
//   per-peer  — every message encoded once per peer          (N encodes)
//   ribout    — every message encoded once per policy class  (4 encodes)
//
// The run reports messages built, bytes built and attribute sections
// encoded (Router counters xbgp_export_{messages,bytes}_built_total,
// xbgp_export_attr_sections_total) plus single-core wall-clock medians,
// and the ribout-vs-per-peer reduction factors. The acceptance gate is a
// >= 5x reduction in encode work at 1000 peers; at the default geometry
// the grouping yields far more. Wire output is bit-identical between the
// two engines — that is proven by the differential gate
// (tools/check.sh export), not here; this harness measures the work.
//
//   ./export_fanout [--peers N] [--routes N] [--churn N] [--runs N] [--seed N]
//
// Defaults: 1000 peers, 20000 routes, 2000 churned, 3 runs, seed 202006.
// The full paper-scale load (--routes 1000000) runs the same code path;
// the reduction factor is geometry-determined and already stable at the
// default size.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "harness/stats.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "net/event_loop.hpp"

using namespace xb;

namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

struct Params {
  std::size_t peers = 1000;
  std::size_t routes = 20'000;
  std::size_t churn = 2'000;
  std::size_t runs = 3;
  std::uint64_t seed = 202006;
};

struct RunResult {
  double seconds = 0.0;
  std::uint64_t messages_built = 0;
  std::uint64_t bytes_built = 0;
  std::uint64_t attr_sections = 0;
  std::uint64_t updates_out = 0;
};

/// The four export policy classes: (rr_client, next_hop_self, peer ASN).
struct PeerClass {
  const char* name;
  bool rr_client;
  bool next_hop_self;
  bgp::Asn asn;
};
constexpr PeerClass kClasses[] = {
    {"ibgp-rr", true, false, 65000},
    {"ibgp-nhs", false, true, 65000},
    {"ebgp-a", false, false, 65101},
    {"ebgp-b", false, false, 65102},
};

template <typename Dut>
RunResult one_run(const Params& p, const harness::Workload& announce,
                  const harness::Workload& churn_wave,
                  const std::vector<std::vector<std::uint8_t>>& withdraw_wave,
                  hosts::engine::ExportEngine engine) {
  net::EventLoop loop;

  typename Dut::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = util::Ipv4Addr(10, 0, 0, 2);
  cfg.export_engine = engine;
  Dut dut(loop, cfg);

  // Feeder: an eBGP session delivering the pre-encoded table.
  net::Duplex feed_link(loop, /*latency=*/0);
  dut.add_peer(feed_link.b(), {.name = "feed",
                               .asn = 65001,
                               .address = util::Ipv4Addr(10, 0, 0, 1)});
  bgp::PeerSession::Config fc;
  fc.local_asn = 65001;
  fc.peer_asn = 65000;
  fc.local_id = 0x0A000001;
  fc.local_addr = util::Ipv4Addr(10, 0, 0, 1);
  fc.peer_addr = cfg.address;
  harness::Feeder feeder(loop, feed_link.a(), fc);

  // The fleet: p.peers sinks, round-robin across the four policy classes.
  std::vector<std::unique_ptr<net::Duplex>> links;
  std::vector<std::unique_ptr<harness::Sink>> sinks;
  links.reserve(p.peers);
  sinks.reserve(p.peers);
  for (std::size_t i = 0; i < p.peers; ++i) {
    const PeerClass& cls = kClasses[i % std::size(kClasses)];
    links.push_back(std::make_unique<net::Duplex>(loop, /*latency=*/0));
    const util::Ipv4Addr addr(static_cast<std::uint32_t>(0x0B000000 + i + 1));
    dut.add_peer(links.back()->a(), {.name = cls.name,
                                     .asn = cls.asn,
                                     .address = addr,
                                     .rr_client = cls.rr_client,
                                     .next_hop_self = cls.next_hop_self});
    bgp::PeerSession::Config sc;
    sc.local_asn = cls.asn;
    sc.peer_asn = 65000;
    sc.local_id = static_cast<std::uint32_t>(0x0B000000 + i + 1);
    sc.local_addr = addr;
    sc.peer_addr = cfg.address;
    sinks.push_back(std::make_unique<harness::Sink>(loop, links.back()->b(), sc));
  }

  dut.start();
  feeder.start();
  for (auto& sink : sinks) sink->start();
  loop.run_until(loop.now() + 2 * kSec);
  if (!feeder.established()) {
    std::fprintf(stderr, "export_fanout: feeder failed to establish\n");
    std::exit(1);
  }

  const auto t0 = std::chrono::steady_clock::now();
  feeder.send_all(announce.updates);
  loop.run_until(loop.now() + 2 * kSec);
  feeder.send_all(withdraw_wave);
  loop.run_until(loop.now() + kSec);
  feeder.send_all(churn_wave.updates);
  loop.run_until(loop.now() + 2 * kSec);
  const auto t1 = std::chrono::steady_clock::now();

  // Every peer must have received the full table (fan-out correctness).
  for (auto& sink : sinks) {
    if (sink->prefixes() < announce.prefix_count) {
      std::fprintf(stderr, "export_fanout: a sink saw %llu of %zu prefixes\n",
                   static_cast<unsigned long long>(sink->prefixes()), announce.prefix_count);
      std::exit(1);
    }
  }

  const auto stats = dut.stats();
  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.messages_built = stats.messages_built;
  r.bytes_built = stats.bytes_built;
  r.attr_sections = stats.attr_sections;
  r.updates_out = stats.updates_out;
  return r;
}

template <typename Dut>
void measure(const char* host, const Params& p, const harness::Workload& announce,
             const harness::Workload& churn_wave,
             const std::vector<std::vector<std::uint8_t>>& withdraw_wave) {
  RunResult results[2];
  const hosts::engine::ExportEngine engines[2] = {hosts::engine::ExportEngine::kPerPeer,
                                                  hosts::engine::ExportEngine::kRibOut};
  const char* names[2] = {"per-peer", "ribout"};
  for (int e = 0; e < 2; ++e) {
    std::vector<double> times;
    times.reserve(p.runs);
    for (std::size_t i = 0; i < p.runs; ++i) {
      const RunResult r =
          one_run<Dut>(p, announce, churn_wave, withdraw_wave, engines[e]);
      times.push_back(r.seconds);
      results[e] = r;  // counters are deterministic across runs
    }
    results[e].seconds = harness::boxplot(times).median;
    std::printf("%-6s %-8s  msgs built %10llu  bytes built %12llu  attr sections %9llu"
                "  sends %10llu  median %7.3fs\n",
                host, names[e], static_cast<unsigned long long>(results[e].messages_built),
                static_cast<unsigned long long>(results[e].bytes_built),
                static_cast<unsigned long long>(results[e].attr_sections),
                static_cast<unsigned long long>(results[e].updates_out), results[e].seconds);
  }
  const auto ratio = [](std::uint64_t base, std::uint64_t opt) {
    return opt == 0 ? 0.0 : static_cast<double>(base) / static_cast<double>(opt);
  };
  const double msg_r = ratio(results[0].messages_built, results[1].messages_built);
  const double byte_r = ratio(results[0].bytes_built, results[1].bytes_built);
  const double attr_r = ratio(results[0].attr_sections, results[1].attr_sections);
  std::printf("%-6s reduction  messages %.1fx  bytes %.1fx  attr sections %.1fx  %s\n\n",
              host, msg_r, byte_r, attr_r,
              (msg_r >= 5.0 && byte_r >= 5.0) ? "PASS (>=5x)" : "FAIL (<5x)");
  if (msg_r < 5.0 || byte_r < 5.0) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    const auto val = std::strtoull(argv[i + 1], nullptr, 10);
    if (flag == "--peers") p.peers = val;
    else if (flag == "--routes") p.routes = val;
    else if (flag == "--churn") p.churn = val;
    else if (flag == "--runs") p.runs = val;
    else if (flag == "--seed") p.seed = val;
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (p.churn > p.routes) p.churn = p.routes;

  harness::WorkloadParams wp;
  wp.route_count = p.routes;
  wp.seed = p.seed;
  const auto announce = harness::make_workload(wp);

  // Churn wave: re-announce a slice of the table with different attributes
  // (a different seed reshuffles AS paths/MEDs for the same prefix space).
  harness::WorkloadParams cp;
  cp.route_count = p.churn;
  cp.seed = p.seed + 1;
  const auto churn_wave = harness::make_workload(cp);

  // Withdraw wave: retract the churn slice first so the re-announce exercises
  // the withdraw-then-announce path of the builders.
  std::vector<std::vector<std::uint8_t>> withdraw_wave;
  {
    bgp::UpdateMessage m;
    for (const auto& r : churn_wave.routes) {
      m.withdrawn.push_back(r.prefix);
      if (m.withdrawn.size() == 400) {
        withdraw_wave.push_back(bgp::encode_update(m));
        m.withdrawn.clear();
      }
    }
    if (!m.withdrawn.empty()) withdraw_wave.push_back(bgp::encode_update(m));
  }

  std::printf("Export fan-out — encode work, RibOut groups vs per-peer baseline\n");
  std::printf("%zu peers in %zu policy classes, %zu routes + %zu churned, seed %llu, %zu runs\n\n",
              p.peers, std::size(kClasses), p.routes, p.churn,
              static_cast<unsigned long long>(p.seed), p.runs);
  measure<hosts::fir::FirRouter>("xFir", p, announce, churn_wave, withdraw_wave);
  measure<hosts::wren::WrenRouter>("xWren", p, announce, churn_wave, withdraw_wave);
  return 0;
}
