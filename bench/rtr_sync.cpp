// Ablation: RTR (RFC 6810) synchronisation throughput — the cost of getting
// a full ROA set into a router, which the paper's DUT sidestepped by
// loading a file. Measures PDU codec throughput and full-table sync into
// each ROA store.
#include <benchmark/benchmark.h>

#include "harness/workload.hpp"
#include "rpki/loader.hpp"
#include "rpki/roa_hash.hpp"
#include "rpki/roa_lpfst.hpp"
#include "rpki/roa_trie.hpp"
#include "rpki/rtr_session.hpp"

namespace {

using namespace xb;
using namespace xb::rpki;

const std::vector<Roa>& roa_set() {
  static const std::vector<Roa> roas = [] {
    harness::WorkloadParams params;
    params.route_count = 50'000;
    const auto workload = harness::make_workload(params);
    return make_roa_set(workload.routes, RoaSetParams{});
  }();
  return roas;
}

void BM_PduEncode(benchmark::State& state) {
  const auto& roas = roa_set();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtr::encode(rtr::Pdu{rtr::Ipv4Prefix{true, roas[i++ % roas.size()]}}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PduEncode);

void BM_PduDecode(benchmark::State& state) {
  const auto wire = rtr::encode(rtr::Pdu{rtr::Ipv4Prefix{true, roa_set().front()}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtr::try_decode(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PduDecode);

template <typename Store>
void BM_FullSync(benchmark::State& state) {
  const auto& roas = roa_set();
  for (auto _ : state) {
    net::EventLoop loop;
    net::Duplex link(loop, 0);
    rtr::CacheServer server(loop, 7);
    // Seed before attaching so no notifies queue up per ROA.
    std::vector<rtr::Delta> deltas;
    deltas.reserve(roas.size());
    for (const auto& roa : roas) deltas.push_back(rtr::Delta{true, roa});
    server.apply(deltas);
    server.attach(link.a());
    Store table;
    rtr::RtrClient client(loop, link.b(), table);
    client.start();
    loop.run_until_idle();
    if (table.size() != roas.size()) state.SkipWithError("sync incomplete");
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * roas.size());
}
BENCHMARK(BM_FullSync<RoaTrie>)->Name("BM_RtrFullSync/Trie")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullSync<RoaHashTable>)->Name("BM_RtrFullSync/Hash")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullSync<LpfstRoaTable>)
    ->Name("BM_RtrFullSync/Lpfst")
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalUpdate(benchmark::State& state) {
  // Steady-state: one announce propagating through notify/query/delta.
  net::EventLoop loop;
  net::Duplex link(loop, 0);
  rtr::CacheServer server(loop, 7);
  server.attach(link.a());
  RoaHashTable table;
  rtr::RtrClient client(loop, link.b(), table);
  client.start();
  loop.run_until_idle();
  std::uint32_t n = 0;
  for (auto _ : state) {
    server.announce(Roa{util::Prefix(util::Ipv4Addr(0x14000000u + (n++ << 8)), 24), 24, 65001});
    loop.run_until_idle();
    benchmark::DoNotOptimize(client.serial());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalUpdate);

}  // namespace
