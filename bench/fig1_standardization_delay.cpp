// Fig. 1: "Delay between the publication of the first IETF draft and the
// published version of the last 40 BGP RFCs" — the CDF motivating xBGP.
//
// Prints the CDF series (delay in years, cumulative fraction) plus the
// summary statistics the paper quotes in §1 (median 3.5 years, max ~10).

#include <cstdio>

#include "harness/rfc_dataset.hpp"
#include "harness/stats.hpp"

int main() {
  using namespace xb::harness;

  const auto delays = standardization_delays_sorted();
  const auto data = idr_rfc_dataset();

  std::printf("Fig. 1 — Standardization delay CDF (%zu BGP RFCs)\n", delays.size());
  std::printf("%-18s %s\n", "delay (years)", "CDF");
  for (std::size_t i = 0; i < delays.size(); ++i) {
    std::printf("%-18.2f %.3f\n", delays[i],
                static_cast<double>(i + 1) / static_cast<double>(delays.size()));
  }

  std::printf("\nsummary: median=%.2f years, q1=%.2f, q3=%.2f, max=%.2f\n",
              quantile_sorted(delays, 0.5), quantile_sorted(delays, 0.25),
              quantile_sorted(delays, 0.75), delays.back());
  std::printf("paper:   median=3.5 years, max up to 10 years\n");

  std::printf("\nslowest standardizations:\n");
  double worst = 0;
  const RfcEntry* slowest = nullptr;
  for (const auto& e : data) {
    if (e.delay_years() > worst) {
      worst = e.delay_years();
      slowest = &e;
    }
  }
  if (slowest != nullptr) {
    std::printf("  RFC %d (%s): %.1f years\n", slowest->rfc, slowest->title, worst);
  }
  return 0;
}
