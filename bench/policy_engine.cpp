// Ablation: per-route cost of the interpreted policy machinery (route-maps)
// that both hosts' native paths evaluate — the baseline work against which
// extension overhead is relative in Fig. 4.
#include <benchmark/benchmark.h>

#include "bgp/codec.hpp"
#include "bgp/policy.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_core.hpp"
#include "hosts/wren/wren_core.hpp"
#include "rpki/roa_trie.hpp"
#include "rpki/rtr_client.hpp"

namespace {

using namespace xb;
using namespace xb::bgp::policy;

struct Fixture {
  harness::Workload workload;
  std::vector<hosts::fir::FirAttrs> attrs;
  rpki::RoaTrie trie;
  std::unique_ptr<rpki::LockedRoaTable> locked;

  Fixture() {
    harness::WorkloadParams params;
    params.route_count = 20'000;
    workload = harness::make_workload(params);
    for (const auto& wire : workload.updates) {
      const auto frame = bgp::try_frame(wire);
      attrs.push_back(
          hosts::fir::FirCore::from_wire(bgp::decode_update(frame->body)->attrs, {}));
    }
    rpki::fill_table(trie, rpki::make_roa_set(workload.routes, rpki::RoaSetParams{}));
    locked = std::make_unique<rpki::LockedRoaTable>(trie);
  }

  RouteFacts facts_at(std::size_t i, std::vector<bgp::Asn>& path_scratch,
                      std::vector<std::uint32_t>& comm_scratch) const {
    const auto& a = attrs[i % attrs.size()];
    RouteFacts facts;
    facts.prefix = workload.routes[i % workload.routes.size()].prefix;
    facts.origin_asn = hosts::fir::FirCore::origin_asn(a);
    hosts::fir::FirCore::flatten_as_path(a, path_scratch);
    facts.as_path = path_scratch;
    hosts::fir::FirCore::communities_of(a, comm_scratch);
    facts.communities = comm_scratch;
    facts.local_pref = 100;
    return facts;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_StandardImportEvaluation(benchmark::State& state) {
  auto& f = fixture();
  const auto map = standard_import_policy();
  std::vector<bgp::Asn> paths;
  std::vector<std::uint32_t> comms;
  std::size_t i = 0;
  for (auto _ : state) {
    auto facts = f.facts_at(i++, paths, comms);
    benchmark::DoNotOptimize(map.evaluate(facts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StandardImportEvaluation);

void BM_ImportWithRpkiClause(benchmark::State& state) {
  auto& f = fixture();
  const auto map = standard_import_policy(f.locked.get());
  std::vector<bgp::Asn> paths;
  std::vector<std::uint32_t> comms;
  std::size_t i = 0;
  for (auto _ : state) {
    auto facts = f.facts_at(i++, paths, comms);
    benchmark::DoNotOptimize(map.evaluate(facts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImportWithRpkiClause);

void BM_StandardExportEvaluation(benchmark::State& state) {
  auto& f = fixture();
  const auto map = standard_export_policy();
  std::vector<bgp::Asn> paths;
  std::vector<std::uint32_t> comms;
  std::size_t i = 0;
  for (auto _ : state) {
    auto facts = f.facts_at(i++, paths, comms);
    benchmark::DoNotOptimize(map.evaluate(facts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StandardExportEvaluation);

}  // namespace
