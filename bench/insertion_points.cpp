// Ablation: VMM dispatch cost at an insertion point — empty chain (native
// fast path), one program, and next() chains of growing depth. This is the
// per-operation overhead every xBGP-compliant host pays.
#include <benchmark/benchmark.h>

#include "ebpf/assembler.hpp"
#include "xbgp/vmm.hpp"

namespace {

using namespace xb;
using namespace xb::xbgp;
using ebpf::Assembler;
using ebpf::Reg;

/// No-op host: insertion-point dispatch only.
class NullHost : public HostApi {
 public:
  bool peer_info(const ExecContext&, PeerInfo& out) override {
    out = PeerInfo{};
    return true;
  }
  bool src_peer_info(const ExecContext&, PeerInfo& out) override {
    out = PeerInfo{};
    return true;
  }
  std::optional<bgp::WireAttr> get_attr(const ExecContext&, std::uint8_t) override {
    return std::nullopt;
  }
  bool set_attr(ExecContext&, bgp::WireAttr) override { return true; }
  bool add_attr(ExecContext&, bgp::WireAttr) override { return true; }
  bool nexthop_info(const ExecContext&, NexthopInfo& out) override {
    out = NexthopInfo{};
    return true;
  }
  std::span<const std::uint8_t> get_xtra(std::string_view) override { return {}; }
  bool write_buf(ExecContext&, std::span<const std::uint8_t>) override { return true; }
  bool rib_add_route(const util::Prefix&, util::Ipv4Addr) override { return true; }
  std::optional<util::Ipv4Addr> rib_lookup(const util::Prefix&) override {
    return std::nullopt;
  }
  bool set_route_meta(ExecContext&, std::uint32_t) override { return true; }
  std::optional<std::uint32_t> get_route_meta(const ExecContext&) override { return 0; }
  void notify_extension_fault(const FaultInfo&) override {}
  void ebpf_print(std::string_view) override {}
};

ebpf::Program accept_program(const char* name) {
  Assembler a;
  a.mov64(Reg::R0, 1);
  a.exit_();
  return a.build(name);
}

ebpf::Program next_program(const char* name) {
  Assembler a;
  a.call(helper::kNext);
  a.mov64(Reg::R0, 0);
  a.exit_();
  return a.build(name);
}

void BM_DispatchEmptyChain(benchmark::State& state) {
  NullHost host;
  Vmm vmm(host);
  ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmm.execute(Op::kInboundFilter, ctx, [] { return kFilterAccept; }));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchEmptyChain);

void BM_DispatchOneProgram(benchmark::State& state) {
  NullHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("accept", Op::kInboundFilter, accept_program("accept"));
  vmm.load(m);
  ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmm.execute(Op::kInboundFilter, ctx, [] { return kFilterAccept; }));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchOneProgram);

void BM_DispatchNextChain(benchmark::State& state) {
  NullHost host;
  Vmm vmm(host);
  Manifest m;
  const auto depth = state.range(0);
  for (std::int64_t i = 0; i < depth; ++i) {
    m.attach("hop" + std::to_string(i), Op::kInboundFilter,
             next_program(("hop" + std::to_string(i)).c_str()), static_cast<int>(i));
  }
  m.attach("final", Op::kInboundFilter, accept_program("final"),
           static_cast<int>(depth));
  vmm.load(m);
  ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmm.execute(Op::kInboundFilter, ctx, [] { return kFilterAccept; }));
  }
  state.SetItemsProcessed(state.iterations() * (depth + 1));
}
BENCHMARK(BM_DispatchNextChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DispatchFaultFallback(benchmark::State& state) {
  NullHost host;
  Vmm vmm(host);
  Assembler a;
  a.lddw(Reg::R1, 0x100);
  a.ldxdw(Reg::R0, Reg::R1, 0);  // faults every run
  a.exit_();
  Manifest m;
  m.attach("crashy", Op::kInboundFilter, a.build("crashy"));
  vmm.load(m);
  ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmm.execute(Op::kInboundFilter, ctx, [] { return kFilterAccept; }));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchFaultFallback);

}  // namespace
