// Ablation: the ROA lookup structures behind the Fig. 4 origin-validation
// anomaly — FRRouting's per-lookup trie walk vs BIRD's hash probing vs the
// extension's exact-match hash map. The paper's §3.4 finding ("our extension
// is 10% faster than the native code") reduces to this comparison.
#include <benchmark/benchmark.h>

#include "harness/workload.hpp"
#include "rpki/loader.hpp"
#include "rpki/roa_hash.hpp"
#include "rpki/roa_lpfst.hpp"
#include "rpki/roa_trie.hpp"
#include "xbgp/mempool.hpp"

namespace {

using namespace xb;

struct Fixture {
  harness::Workload workload;
  std::vector<rpki::Roa> roas;
  rpki::RoaTrie trie;
  rpki::RoaHashTable hash;
  rpki::LpfstRoaTable lpfst;
  xbgp::ExtMap ext_map;

  explicit Fixture(std::size_t n) {
    harness::WorkloadParams params;
    params.route_count = n;
    workload = harness::make_workload(params);
    roas = rpki::make_roa_set(workload.routes, rpki::RoaSetParams{});
    rpki::fill_table(trie, roas);
    rpki::fill_table(hash, roas);
    rpki::fill_table(lpfst, roas);
    ext_map.reserve(roas.size());
    for (const auto& roa : roas) {
      const std::uint64_t k1 =
          (static_cast<std::uint64_t>(roa.prefix.addr().value()) << 8) | roa.prefix.length();
      ext_map.update(k1, 0, (static_cast<std::uint64_t>(roa.origin) << 8) | roa.max_length);
    }
  }
};

Fixture& fixture() {
  static Fixture f(100'000);
  return f;
}

void BM_TrieValidate(benchmark::State& state) {
  auto& f = fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = f.workload.routes[i++ % f.workload.routes.size()];
    benchmark::DoNotOptimize(f.trie.validate(r.prefix, r.origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieValidate);

void BM_LpfstValidate(benchmark::State& state) {
  // rtrlib's re-descending lookup: what FRRouting's native validation pays.
  auto& f = fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = f.workload.routes[i++ % f.workload.routes.size()];
    benchmark::DoNotOptimize(f.lpfst.validate(r.prefix, r.origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpfstValidate);

void BM_HashValidate(benchmark::State& state) {
  auto& f = fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = f.workload.routes[i++ % f.workload.routes.size()];
    benchmark::DoNotOptimize(f.hash.validate(r.prefix, r.origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashValidate);

void BM_ExtMapExactLookup(benchmark::State& state) {
  auto& f = fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = f.workload.routes[i++ % f.workload.routes.size()];
    const std::uint64_t k1 =
        (static_cast<std::uint64_t>(r.prefix.addr().value()) << 8) | r.prefix.length();
    benchmark::DoNotOptimize(f.ext_map.lookup(k1, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtMapExactLookup);

void BM_TrieBuild(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    rpki::RoaTrie trie;
    rpki::fill_table(trie, f.roas);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * f.roas.size());
}
BENCHMARK(BM_TrieBuild);

void BM_HashBuild(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    rpki::RoaHashTable hash;
    rpki::fill_table(hash, f.roas);
    benchmark::DoNotOptimize(hash.size());
  }
  state.SetItemsProcessed(state.iterations() * f.roas.size());
}
BENCHMARK(BM_HashBuild);

}  // namespace
