// Telemetry spine overhead gate: the cost of the metrics registry with
// tracing OFF must stay under a small budget (default 2%) relative to an
// uninstrumented baseline, at pipeline parallelism 8 — the configuration
// the ISSUE acceptance pins down. Tracing ON is measured too, for the
// record; it is allowed to cost more (two clock reads per invocation).
//
// Three DUT configurations over the identical RR workload:
//   baseline      Config::obs.enabled = false  (registry calls no-op,
//                 sessions fall back to member counters, no VMM telemetry)
//   instrumented  obs on, tracing off — the shipping default. Since the
//                 flight recorder rides the same switch, this mode now
//                 includes the full event log (route/best-change/session
//                 events), provenance threading through ingest, decision
//                 and export, and per-change flap tracking — all inside
//                 the same budget.
//   traced        obs on, tracing on  — spans + latency histograms
//
// Runs are interleaved round-robin (A/B/C A/B/C ...) so thermal and
// scheduler drift hits every mode equally; medians decide.
//
//   ./obs_overhead [routes] [runs] [gate_pct]
//
// Exits 1 when (instrumented - baseline) / baseline > gate_pct.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "extensions/route_reflection.hpp"
#include "harness/stats.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"

using namespace xb;

namespace {

constexpr std::size_t kParallelism = 8;

enum class Mode { kBaseline, kInstrumented, kTraced };

const char* name_of(Mode m) {
  switch (m) {
    case Mode::kBaseline: return "baseline";
    case Mode::kInstrumented: return "instrumented";
    case Mode::kTraced: return "traced";
  }
  return "?";
}

double one_run(const harness::Workload& feed, Mode mode) {
  using Fir = hosts::fir::FirRouter;
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  Fir::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = kParallelism;
  cfg.obs.enabled = mode != Mode::kBaseline;
  cfg.obs.tracing = mode == Mode::kTraced;
  Fir dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<Fir> bed(loop, dut, plan);
  bed.establish();
  return bed.run(feed, feed.prefix_count);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t routes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40'000;
  const std::size_t runs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 7;
  const double gate_pct = argc > 3 ? std::strtod(argv[3], nullptr) : 2.0;

  harness::WorkloadParams params;
  params.route_count = routes;
  params.with_local_pref = true;
  const auto base = harness::make_workload(params);
  harness::Workload feed;
  feed.updates = harness::shard_workload(base, kParallelism).interleaved();
  feed.prefix_count = base.prefix_count;

  // Extensions execute on the VMM's default tier (the fast engine since the
  // tiered execution work) — the telemetry budget must hold there too, where
  // the fixed spine cost is a larger share of a faster run.
  std::printf("Telemetry spine overhead — RR use case, parallelism %zu, %zu routes, "
              "%zu runs, %u cores, fast engine\n\n",
              kParallelism, routes, runs, std::thread::hardware_concurrency());

  constexpr Mode kModes[] = {Mode::kBaseline, Mode::kInstrumented, Mode::kTraced};
  for (Mode m : kModes) (void)one_run(feed, m);  // untimed warm-up

  std::vector<double> times[3];
  for (std::size_t i = 0; i < runs; ++i) {
    for (std::size_t m = 0; m < 3; ++m) times[m].push_back(one_run(feed, kModes[m]));
  }

  double medians[3] = {};
  for (std::size_t m = 0; m < 3; ++m) {
    const auto box = harness::boxplot(times[m]);
    medians[m] = box.median;
    std::printf("%-13s median %7.4fs  [%7.4f .. %7.4f]  %10.0f routes/s\n",
                name_of(kModes[m]), box.median, box.min, box.max,
                static_cast<double>(feed.prefix_count) / box.median);
  }

  const double instr_pct = (medians[1] - medians[0]) / medians[0] * 100.0;
  const double trace_pct = (medians[2] - medians[0]) / medians[0] * 100.0;
  std::printf("\ninstrumented vs baseline: %+6.2f%%   (gate: %.1f%%)\n", instr_pct,
              gate_pct);
  std::printf("traced       vs baseline: %+6.2f%%   (informational)\n", trace_pct);

  if (instr_pct > gate_pct) {
    std::fprintf(stderr,
                 "FAIL: registry instrumentation costs %.2f%% with tracing off "
                 "(budget %.1f%%)\n",
                 instr_pct, gate_pct);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
