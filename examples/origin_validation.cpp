// RPKI origin validation (paper §3.4) on the Fig. 3 testbed.
//
// The DUT loads a ROA file built so that 75% of the injected prefixes are
// Valid; the extension checks the origin of every prefix but — like the
// paper's test — does not discard the invalid ones. The example runs the
// *same* two bytecodes (ov_init builds the hash table, ov_inbound validates)
// on both the FRR-like and the BIRD-like host and compares the resulting
// validation-state counters against each host's native implementation.
//
// Run: ./origin_validation [route_count]

#include <cstdio>
#include <cstdlib>

#include "extensions/origin_validation.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

using namespace xb;

namespace {

struct OvCounts {
  std::uint64_t valid = 0, invalid = 0, not_found = 0;
};

template <typename Dut>
OvCounts run(const harness::Workload& workload, const std::vector<rpki::Roa>& roas,
             bool use_extension, const rpki::RoaTable* native_table) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename Dut::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  if (!use_extension) cfg.roa_table = native_table;
  Dut dut(loop, cfg);
  if (use_extension) {
    dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(roas));
    dut.load_extensions(ext::origin_validation_manifest(roas.size()));
  }
  harness::Testbed<Dut> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  return OvCounts{dut.stats().ov_valid, dut.stats().ov_invalid, dut.stats().ov_not_found};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t routes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20'000;

  harness::WorkloadParams params;
  params.route_count = routes;
  const auto workload = harness::make_workload(params);

  rpki::RoaSetParams roa_params;  // 75% valid, like the paper
  const auto roas = rpki::make_roa_set(workload.routes, roa_params);

  rpki::RoaTrie trie;        // FRR-native structure
  rpki::RoaHashTable hash;   // BIRD-native structure
  rpki::fill_table(trie, roas);
  rpki::fill_table(hash, roas);

  std::printf("%zu routes, %zu ROAs (75%% of prefixes valid)\n\n", workload.prefix_count,
              roas.size());
  std::printf("%-28s %10s %10s %10s\n", "configuration", "valid", "invalid", "not-found");

  const auto print = [](const char* label, const OvCounts& counts) {
    std::printf("%-28s %10llu %10llu %10llu\n", label,
                static_cast<unsigned long long>(counts.valid),
                static_cast<unsigned long long>(counts.invalid),
                static_cast<unsigned long long>(counts.not_found));
  };

  const auto fir_native = run<hosts::fir::FirRouter>(workload, roas, false, &trie);
  print("Fir   native (trie)", fir_native);
  const auto fir_ext = run<hosts::fir::FirRouter>(workload, roas, true, nullptr);
  print("xFir  extension (hash)", fir_ext);
  const auto wren_native = run<hosts::wren::WrenRouter>(workload, roas, false, &hash);
  print("Wren  native (hash)", wren_native);
  const auto wren_ext = run<hosts::wren::WrenRouter>(workload, roas, true, nullptr);
  print("xWren extension (hash)", wren_ext);

  const bool agree = fir_native.valid == fir_ext.valid && fir_ext.valid == wren_native.valid &&
                     wren_native.valid == wren_ext.valid &&
                     fir_native.invalid == fir_ext.invalid &&
                     fir_ext.invalid == wren_ext.invalid;
  const double valid_fraction =
      static_cast<double>(fir_native.valid) / static_cast<double>(workload.prefix_count);
  std::printf("\nall four configurations agree: %s; valid fraction: %.1f%%\n",
              agree ? "yes" : "NO", 100.0 * valid_fraction);
  const bool ok = agree && valid_fraction > 0.70 && valid_fraction < 0.80;
  std::printf("%s\n", ok ? "origin validation example OK" : "origin validation example FAILED");
  return ok ? 0 : 1;
}
