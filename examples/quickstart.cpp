// Quickstart: three xBGP-compliant routers from *different* implementations
// (Fir ~ FRRouting internals, Wren ~ BIRD internals) exchange routes; then
// extension bytecode is loaded into the middle router at runtime and changes
// its export behaviour — no vendor involvement, no standardisation wait.
//
//   edge (Wren, AS 65003) --eBGP-- fir (AS 65001) --eBGP-- wren (AS 65002)
//
// The edge router originates 203.0.113.0/24. Fir re-exports it to wren
// until the Listing-1 IGP-cost export filter is loaded: the IGP metric from
// fir to the route's nexthop (the edge router) is 100, above the configured
// max_metric of 5, so the route is withdrawn from wren.
//
// Run: ./quickstart

#include <cstdio>

#include "extensions/igp_filter.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

using namespace xb;

int main() {
  net::EventLoop loop;

  // IGP substrate: fir -- wren costs 10, fir -- edge costs 100 (a backup
  // long-haul link, like the paper's transatlantic example).
  igp::Graph graph;
  const auto fir_node = graph.add_node(util::Ipv4Addr::parse("10.0.0.1"), "fir");
  const auto wren_node = graph.add_node(util::Ipv4Addr::parse("10.0.0.2"), "wren");
  const auto edge_node = graph.add_node(util::Ipv4Addr::parse("10.0.0.3"), "edge");
  graph.add_link(fir_node, wren_node, 10);
  graph.add_link(fir_node, edge_node, 100);
  igp::IgpTable fir_igp(graph, fir_node);

  hosts::fir::FirRouter::Config fc;
  fc.name = "fir";
  fc.asn = 65001;
  fc.router_id = 0x0A000001;
  fc.address = util::Ipv4Addr::parse("10.0.0.1");
  fc.igp = &fir_igp;
  hosts::fir::FirRouter fir(loop, fc);

  hosts::wren::WrenRouter::Config wc;
  wc.name = "wren";
  wc.asn = 65002;
  wc.router_id = 0x0A000002;
  wc.address = util::Ipv4Addr::parse("10.0.0.2");
  hosts::wren::WrenRouter wren(loop, wc);

  hosts::wren::WrenRouter::Config ec;
  ec.name = "edge";
  ec.asn = 65003;
  ec.router_id = 0x0A000003;
  ec.address = util::Ipv4Addr::parse("10.0.0.3");
  hosts::wren::WrenRouter edge(loop, ec);

  net::Duplex fir_wren(loop, 1'000'000);   // 1 ms links
  net::Duplex fir_edge(loop, 1'000'000);
  fir.add_peer(fir_wren.a(), {.name = "wren", .asn = 65002, .address = wc.address});
  wren.add_peer(fir_wren.b(), {.name = "fir", .asn = 65001, .address = fc.address});
  fir.add_peer(fir_edge.a(), {.name = "edge", .asn = 65003, .address = ec.address});
  edge.add_peer(fir_edge.b(), {.name = "fir", .asn = 65001, .address = fc.address});

  // [1] Plain BGP: the edge route reaches wren through fir.
  edge.originate(util::Prefix::parse("203.0.113.0/24"));
  fir.start();
  wren.start();
  edge.start();
  loop.run_until(loop.now() + 2'000'000'000ull);
  std::printf("[1] plain BGP: wren Loc-RIB holds %zu route(s)\n", wren.loc_rib_size());

  // [2] Program the router at runtime: load the Listing-1 export filter into
  // fir, then announce a second prefix. It reaches fir but is filtered on
  // the export towards wren (nexthop metric 100 > max_metric 5).
  fir.set_xtra_u32(xbgp::xtra::kMaxMetric, 5);
  fir.load_extensions(ext::igp_filter_manifest());

  edge.originate(util::Prefix::parse("198.51.100.0/24"));
  loop.run_until(loop.now() + 2'000'000'000ull);
  std::printf("[2] with igp_filter (max_metric=5): fir Loc-RIB holds %zu route(s), "
              "wren Loc-RIB holds %zu route(s)\n",
              fir.loc_rib_size(), wren.loc_rib_size());

  const auto& stats = fir.vmm().stats();
  std::printf("[3] fir VMM stats: %llu invocations, %llu handled by extension, "
              "%llu next() yields, %llu faults\n",
              static_cast<unsigned long long>(stats.invocations),
              static_cast<unsigned long long>(stats.extension_handled),
              static_cast<unsigned long long>(stats.next_yields),
              static_cast<unsigned long long>(stats.faults));

  // Expected: fir accepted both prefixes, wren only saw the pre-filter one.
  const bool ok = fir.loc_rib_size() == 2 && wren.loc_rib_size() == 1;
  std::printf("%s\n", ok ? "quickstart OK" : "quickstart FAILED");
  return ok ? 0 : 1;
}
