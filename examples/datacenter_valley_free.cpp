// Valley-free BGP in a data center (paper §3.3, Fig. 5).
//
//          S1          S2           level 2 (spines)
//      L10 L11 L12 L13              level 1 (leaves; both spines each)
//    T20  T21  T22  T23             level 0 (top-of-rack; pods of two)
//
// Every router gets its own AS number (no same-AS trick), and the xBGP
// valley-free import filter is loaded with the manifest of level pairs.
// The example shows:
//   [1] with the filter, spines never accept valley paths (e.g. S2 learning
//       a ToR prefix via S1 through a leaf);
//   [2] without the filter, such paths are accepted as (harmful) backups;
//   [3] the partition trade-off: after a double link failure, the strict
//       filter blocks the only remaining (valley) path — exactly the policy
//       knob the paper argues operators should be able to program.
//
// Run: ./datacenter_valley_free

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "extensions/valley_free.hpp"
#include "hosts/fir/fir_router.hpp"

using namespace xb;

namespace {

struct Fabric {
  net::EventLoop loop;
  std::vector<std::unique_ptr<hosts::fir::FirRouter>> routers;
  std::vector<std::unique_ptr<net::Duplex>> links;
  // Session index per (router, peer) creation order; we keep the mapping
  // implicit and only record the handles we need for the failure scenario.
  std::size_t l10_s1_session_on_l10 = 0;
  std::size_t l13_s2_session_on_l13 = 0;

  enum Id { S1, S2, L10, L11, L12, L13, T20, T21, T22, T23, kCount };

  hosts::fir::FirRouter& r(Id id) { return *routers[id]; }
};

constexpr bgp::Asn kAsn[Fabric::kCount] = {65201, 65202, 65110, 65111, 65112,
                                           65113, 65020, 65021, 65022, 65023};
constexpr const char* kName[Fabric::kCount] = {"S1",  "S2",  "L10", "L11", "L12",
                                               "L13", "T20", "T21", "T22", "T23"};
constexpr int kLevel[Fabric::kCount] = {2, 2, 1, 1, 1, 1, 0, 0, 0, 0};

std::vector<std::uint8_t> valley_pairs_blob() {
  // One (lower AS, upper AS) entry per level-i -> level-i+1 eBGP session.
  std::vector<xbgp::ValleyPair> pairs;
  auto add = [&pairs](Fabric::Id lo, Fabric::Id up) {
    pairs.push_back(xbgp::ValleyPair{kAsn[lo], kAsn[up]});
  };
  add(Fabric::T20, Fabric::L10); add(Fabric::T20, Fabric::L11);
  add(Fabric::T21, Fabric::L10); add(Fabric::T21, Fabric::L11);
  add(Fabric::T22, Fabric::L12); add(Fabric::T22, Fabric::L13);
  add(Fabric::T23, Fabric::L12); add(Fabric::T23, Fabric::L13);
  add(Fabric::L10, Fabric::S1); add(Fabric::L10, Fabric::S2);
  add(Fabric::L11, Fabric::S1); add(Fabric::L11, Fabric::S2);
  add(Fabric::L12, Fabric::S1); add(Fabric::L12, Fabric::S2);
  add(Fabric::L13, Fabric::S1); add(Fabric::L13, Fabric::S2);
  std::vector<std::uint8_t> blob(pairs.size() * sizeof(xbgp::ValleyPair));
  std::memcpy(blob.data(), pairs.data(), blob.size());
  return blob;
}

enum class FilterMode { kNone, kStrict, kRelaxed };

std::unique_ptr<Fabric> build(FilterMode mode) {
  auto fabric = std::make_unique<Fabric>();
  const auto blob = valley_pairs_blob();

  // For the relaxed mode, L13's leaf prefix is operator-designated critical:
  // reachability beats valley-freedom for it under multi-failure conditions.
  xbgp::PrefixArg critical{util::Ipv4Addr(10, 113, 0, 0).value(), 16, {}};
  std::vector<std::uint8_t> critical_blob(sizeof(critical));
  std::memcpy(critical_blob.data(), &critical, sizeof(critical));

  for (int i = 0; i < Fabric::kCount; ++i) {
    hosts::fir::FirRouter::Config cfg;
    cfg.name = kName[i];
    cfg.asn = kAsn[i];
    cfg.router_id = 0x0A640000u + static_cast<std::uint32_t>(i + 1);
    cfg.address = util::Ipv4Addr(10, 100, 0, static_cast<std::uint8_t>(i + 1));
    fabric->routers.push_back(std::make_unique<hosts::fir::FirRouter>(fabric->loop, cfg));
    auto& router = fabric->r(static_cast<Fabric::Id>(i));
    if (mode != FilterMode::kNone) {
      router.set_xtra(xbgp::xtra::kValleyPairs, blob);
      if (mode == FilterMode::kRelaxed) {
        router.set_xtra(xbgp::xtra::kCriticalPrefixes, critical_blob);
        router.load_extensions(ext::valley_free_relaxed_manifest());
      } else {
        router.load_extensions(ext::valley_free_manifest());
      }
    }
  }

  auto connect = [&fabric](Fabric::Id a, Fabric::Id b) {
    fabric->links.push_back(std::make_unique<net::Duplex>(fabric->loop, 100'000));
    auto& link = *fabric->links.back();
    const auto sa = fabric->r(a).add_peer(
        link.a(), {.name = kName[b], .asn = kAsn[b],
                   .address = fabric->r(b).config().address});
    fabric->r(b).add_peer(link.b(), {.name = kName[a], .asn = kAsn[a],
                                     .address = fabric->r(a).config().address});
    if (a == Fabric::L10 && b == Fabric::S1) fabric->l10_s1_session_on_l10 = sa;
    if (a == Fabric::L13 && b == Fabric::S2) fabric->l13_s2_session_on_l13 = sa;
  };

  // ToR <-> leaf (pods), leaf <-> spine (full mesh between levels 1 and 2).
  connect(Fabric::T20, Fabric::L10); connect(Fabric::T20, Fabric::L11);
  connect(Fabric::T21, Fabric::L10); connect(Fabric::T21, Fabric::L11);
  connect(Fabric::T22, Fabric::L12); connect(Fabric::T22, Fabric::L13);
  connect(Fabric::T23, Fabric::L12); connect(Fabric::T23, Fabric::L13);
  connect(Fabric::L10, Fabric::S1); connect(Fabric::L10, Fabric::S2);
  connect(Fabric::L11, Fabric::S1); connect(Fabric::L11, Fabric::S2);
  connect(Fabric::L12, Fabric::S1); connect(Fabric::L12, Fabric::S2);
  connect(Fabric::L13, Fabric::S1); connect(Fabric::L13, Fabric::S2);

  // Each ToR originates its rack prefix 192.168.<tor>.0/24; L13 additionally
  // originates a leaf-local prefix (reachable only through L13 itself —
  // the paper's "prefix attached below L13").
  for (int i = Fabric::T20; i <= Fabric::T23; ++i) {
    fabric->r(static_cast<Fabric::Id>(i))
        .originate(util::Prefix(util::Ipv4Addr(192, 168, static_cast<std::uint8_t>(i), 0), 24));
  }
  fabric->r(Fabric::L13).originate(util::Prefix(util::Ipv4Addr(10, 113, 0, 0), 16));
  for (auto& router : fabric->routers) router->start();
  fabric->loop.run_until(fabric->loop.now() + 5'000'000'000ull);
  return fabric;
}

util::Prefix rack_prefix(int tor) {
  return util::Prefix(util::Ipv4Addr(192, 168, static_cast<std::uint8_t>(tor), 0), 24);
}

bool has_valley(const hosts::fir::FirAttrs& attrs) {
  // A valley shows up as a spine AS appearing in a non-first position while
  // another spine AS appears before it — cheap check: both spines on path.
  return attrs.as_path.contains(kAsn[Fabric::S1]) && attrs.as_path.contains(kAsn[Fabric::S2]);
}

}  // namespace

int main() {
  const auto t22 = rack_prefix(Fabric::T22);

  // [1] With the valley-free extension.
  auto filtered = build(FilterMode::kStrict);
  const auto* s2_best = filtered->r(Fabric::S2).best(t22);
  const auto& s2 = filtered->r(Fabric::S2);
  std::printf("[1] with valley-free filter: S2 best for %s: %s, rejected imports: %llu\n",
              t22.str().c_str(), s2_best ? "present" : "absent",
              static_cast<unsigned long long>(s2.stats().prefixes_rejected_in));
  const bool best_clean = s2_best != nullptr && !has_valley(*s2_best->attrs);
  std::printf("    best path is valley-free: %s\n", best_clean ? "yes" : "NO");

  // [2] Without the filter: S2 accepts valley paths as extra candidates.
  auto open = build(FilterMode::kNone);
  std::printf("[2] without filter: S2 rejected imports: %llu (valley paths were accepted)\n",
              static_cast<unsigned long long>(open->r(Fabric::S2).stats().prefixes_rejected_in));

  // [3] Partition trade-off under double failure: cut L10-S1 and L13-S2.
  auto run_failure = [&](FilterMode mode) {
    auto fabric = build(mode);
    fabric->r(Fabric::L10).session(fabric->l10_s1_session_on_l10).stop();
    fabric->r(Fabric::L13).session(fabric->l13_s2_session_on_l13).stop();
    fabric->loop.run_until(fabric->loop.now() + 5'000'000'000ull);
    // Can L10 still reach the prefix attached below L13? The only remaining
    // path is the valley L10 -> S2 -> L12 -> S1 -> L13 (paper Â§3.3).
    return fabric->r(Fabric::L10).best(util::Prefix(util::Ipv4Addr(10, 113, 0, 0), 16)) !=
           nullptr;
  };
  const bool reach_strict = run_failure(FilterMode::kStrict);
  const bool reach_none = run_failure(FilterMode::kNone);
  const bool reach_relaxed = run_failure(FilterMode::kRelaxed);
  std::printf("[3] double failure (L10-S1, L13-S2): L10 reaches L13's leaf prefix\n"
              "      strict filter:   %s (network partitions, like the same-AS trick)\n"
              "      no filter:       %s (valley path used as recovery)\n"
              "      relaxed filter:  %s (critical prefix exempted, valleys still\n"
              "                           blocked for everything else)\n",
              reach_strict ? "yes" : "no", reach_none ? "yes" : "no",
              reach_relaxed ? "yes" : "no");
  std::printf("    -> with xBGP this is an operator *choice*, reprogrammable at runtime.\n");

  const bool ok = best_clean && !reach_strict && reach_none && reach_relaxed;
  std::printf("%s\n", ok ? "datacenter example OK" : "datacenter example FAILED");
  return ok ? 0 : 1;
}
