// Operator workflow: a text manifest attaches extension bytecodes, exactly
// as libxbgp's VMM "is initialized with a manifest containing the extension
// bytecodes and the points where they must be inserted ... and in which
// order they are executed" (paper §2.1).
//
// Two filters chain at BGP_INBOUND_FILTER via next(): the GeoLoc distance
// filter runs first (order 1), then origin validation (order 2); both
// delegate to the native default (the standard import route-map).
//
// Run: ./manifest_loader

#include <cstdio>

#include "extensions/registry.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"

using namespace xb;

namespace {

constexpr const char* kManifestText = R"(
# Operator-supplied manifest: same format idea as libxbgp.
extension geoloc_inbound {
  insertion_point BGP_INBOUND_FILTER
  order 1
  group geoloc
  helpers next get_attr get_xtra get_xtra_len
}
extension ov_init {
  insertion_point XBGP_INIT
  group origin_validation
  map_capacity 1000
  helpers get_xtra get_xtra_len map_update
}
extension ov_inbound {
  insertion_point BGP_INBOUND_FILTER
  order 2
  group origin_validation
  map_capacity 1000
  helpers next get_arg get_attr map_lookup set_route_meta
}
)";

}  // namespace

int main() {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  hosts::fir::FirRouter::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  hosts::fir::FirRouter dut(loop, cfg);

  // Parse the text manifest against the registry of shipped programs.
  const auto registry = ext::default_registry();
  xbgp::Manifest manifest;
  try {
    manifest = xbgp::parse_manifest(kManifestText, registry);
  } catch (const std::exception& e) {
    std::printf("manifest rejected: %s\n", e.what());
    return 1;
  }
  std::printf("manifest parsed: %zu extensions\n", manifest.entries.size());

  // Configuration consumed by the extensions.
  harness::WorkloadParams params;
  params.route_count = 2000;
  const auto workload = harness::make_workload(params);
  const auto roas = rpki::make_roa_set(workload.routes, rpki::RoaSetParams{});
  dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(roas));
  std::vector<std::uint8_t> coords(8, 0);  // 0°N 0°E
  dut.set_xtra(xbgp::xtra::kGeoCoord, coords);
  dut.set_xtra_u32(xbgp::xtra::kGeoMaxDist, 10'000'000);

  dut.load_extensions(manifest);  // verifier + XBGP_INIT run here
  std::printf("attached at BGP_INBOUND_FILTER: %zu (geoloc first, then ov)\n",
              dut.vmm().attached_count(xbgp::Op::kInboundFilter));

  harness::Testbed<hosts::fir::FirRouter> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);

  const auto& stats = dut.stats();
  std::printf("routes: %llu in, %llu accepted | validation: %llu valid, %llu invalid, "
              "%llu not-found\n",
              static_cast<unsigned long long>(stats.prefixes_in),
              static_cast<unsigned long long>(stats.prefixes_accepted),
              static_cast<unsigned long long>(stats.ov_valid),
              static_cast<unsigned long long>(stats.ov_invalid),
              static_cast<unsigned long long>(stats.ov_not_found));
  const auto& vmm = dut.vmm().stats();
  std::printf("VMM: %llu invocations, %llu next() delegations, %llu faults\n",
              static_cast<unsigned long long>(vmm.invocations),
              static_cast<unsigned long long>(vmm.next_yields),
              static_cast<unsigned long long>(vmm.faults));

  const bool ok = stats.prefixes_accepted == workload.prefix_count &&
                  stats.ov_valid > 0 && vmm.faults == 0;
  std::printf("%s\n", ok ? "manifest loader example OK" : "manifest loader example FAILED");
  return ok ? 0 : 1;
}
