// Live RPKI: the RTR protocol (RFC 6810) feeding a router's ROA table.
//
// The paper's DUT loaded a static ROA file (§3.4, "does not implement the
// RPKI-Rtr protocol"); this example closes the loop: a cache server pushes
// ROAs over the RTR protocol to a router-side client; the router's native
// origin validation consults the synchronised table, so validation verdicts
// change as the cache changes.
//
//   cache --RTR--> dut(Fir) <--eBGP-- feeder
//
// Run: ./rpki_live

#include <cstdio>

#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "rpki/roa_hash.hpp"
#include "rpki/rtr_session.hpp"

using namespace xb;

int main() {
  net::EventLoop loop;

  // The RTR side: cache server <-> router-side client filling a hash table.
  rpki::RoaHashTable table;
  rpki::rtr::CacheServer cache(loop, /*session_id=*/42);
  net::Duplex rtr_link(loop, 1'000'000);
  cache.attach(rtr_link.a());
  rpki::rtr::RtrClient client(loop, rtr_link.b(), table);

  // Seed the cache with one ROA, then synchronise.
  cache.announce({util::Prefix::parse("203.0.113.0/24"), 24, 65001});
  client.start();
  loop.run_until(loop.now() + 1'000'000'000ull);
  std::printf("[1] RTR synchronised: serial=%u, %zu ROA(s) in the router table\n",
              client.serial(), table.size());

  // The BGP side: a DUT validating imports against the live table.
  const auto plan = harness::TestbedPlan::ebgp_plan();
  hosts::fir::FirRouter::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.roa_table = &table;
  hosts::fir::FirRouter dut(loop, cfg);
  harness::Testbed<hosts::fir::FirRouter> bed(loop, dut, plan);
  bed.establish();

  auto announce = [&](const char* prefix) {
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath({plan.upstream_asn, 65002}).to_attr());
    update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
    update.nlri = {util::Prefix::parse(prefix)};
    bed.feeder().session().send_update(update);
    loop.run_until(loop.now() + 1'000'000'000ull);
  };

  // 198.51.100.0/24 (origin 65002) has no ROA yet -> NotFound.
  announce("198.51.100.0/24");
  std::printf("[2] before the ROA exists: valid=%llu invalid=%llu not-found=%llu\n",
              static_cast<unsigned long long>(dut.stats().ov_valid),
              static_cast<unsigned long long>(dut.stats().ov_invalid),
              static_cast<unsigned long long>(dut.stats().ov_not_found));
  const bool was_not_found = dut.stats().ov_not_found == 1;

  // The cache operator publishes the ROA; RTR pushes it to the router.
  cache.announce({util::Prefix::parse("198.51.100.0/24"), 24, 65002});
  loop.run_until(loop.now() + 1'000'000'000ull);
  std::printf("[3] cache published ROA; RTR client now at serial %u (%zu ROAs)\n",
              client.serial(), table.size());

  // The route is re-announced (e.g. after a route refresh): now Valid.
  announce("198.51.100.0/24");
  std::printf("[4] after the RTR update: valid=%llu invalid=%llu not-found=%llu\n",
              static_cast<unsigned long long>(dut.stats().ov_valid),
              static_cast<unsigned long long>(dut.stats().ov_invalid),
              static_cast<unsigned long long>(dut.stats().ov_not_found));

  const bool ok = was_not_found && dut.stats().ov_valid == 1 && client.serial() == 2;
  std::printf("%s\n", ok ? "rpki live example OK" : "rpki live example FAILED");
  return ok ? 0 : 1;
}
