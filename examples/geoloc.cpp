// GeoLoc (paper §2): the same four extension bytecodes run on two different
// BGP implementations and add an unstandardised attribute end to end.
//
//   feeder (AS 64999)
//      |  eBGP
//   brussels (Fir, AS 65001, 50.85°N 4.35°E)   <- tags routes with GeoLoc
//      |  iBGP
//   tokyo (Wren, AS 65001, 35.68°N 139.69°E)   <- filters routes > threshold
//
// Brussels learns routes over eBGP and stamps them with its coordinates.
// Tokyo's inbound filter rejects routes learned farther than the configured
// distance, so the feeder's route is visible in brussels but not in tokyo.
// With a generous threshold it passes. Run: ./geoloc

#include <cstdio>

#include "extensions/geoloc.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

using namespace xb;

namespace {
std::vector<std::uint8_t> coord_blob(std::int32_t lat_micro, std::int32_t lon_micro) {
  std::vector<std::uint8_t> blob(8);
  std::memcpy(blob.data(), &lat_micro, 4);
  std::memcpy(blob.data() + 4, &lon_micro, 4);
  return blob;
}
}  // namespace

int main() {
  net::EventLoop loop;

  hosts::fir::FirRouter::Config bc;
  bc.name = "brussels";
  bc.asn = 65001;
  bc.router_id = 0x0A000001;
  bc.address = util::Ipv4Addr::parse("10.0.0.1");
  hosts::fir::FirRouter brussels(loop, bc);
  brussels.set_xtra(xbgp::xtra::kGeoCoord, coord_blob(50'850'000, 4'350'000));

  hosts::wren::WrenRouter::Config tc;
  tc.name = "tokyo";
  tc.asn = 65001;
  tc.router_id = 0x0A000002;
  tc.address = util::Ipv4Addr::parse("10.0.0.2");
  hosts::wren::WrenRouter tokyo(loop, tc);
  tokyo.set_xtra(xbgp::xtra::kGeoCoord, coord_blob(35'680'000, 139'690'000));
  // Threshold: ~20 degrees (in micro-degrees). Brussels->Tokyo is ~135° of
  // longitude away, so the route is rejected.
  tokyo.set_xtra_u32(xbgp::xtra::kGeoMaxDist, 20'000'000);

  hosts::wren::WrenRouter::Config fc;
  fc.name = "feeder";
  fc.asn = 64999;
  fc.router_id = 0x0A000003;
  fc.address = util::Ipv4Addr::parse("10.0.0.3");
  hosts::wren::WrenRouter feeder(loop, fc);

  // The SAME bytecode artifacts load into the FRR-like and BIRD-like hosts.
  brussels.load_extensions(ext::geoloc_manifest(/*with_distance_filter=*/true));
  tokyo.load_extensions(ext::geoloc_manifest(/*with_distance_filter=*/true));

  net::Duplex feed(loop, 1'000'000);
  net::Duplex core(loop, 1'000'000);
  feeder.add_peer(feed.a(), {.name = "brussels", .asn = 65001, .address = bc.address});
  brussels.add_peer(feed.b(), {.name = "feeder", .asn = 64999, .address = fc.address});
  brussels.add_peer(core.a(), {.name = "tokyo", .asn = 65001, .address = tc.address,
                               .rr_client = true});
  tokyo.add_peer(core.b(), {.name = "brussels", .asn = 65001, .address = bc.address});

  // Route reflection is needed brussels->tokyo? No: the route is eBGP-learned
  // at brussels, so plain iBGP propagation applies.
  feeder.originate(util::Prefix::parse("203.0.113.0/24"));
  feeder.start();
  brussels.start();
  tokyo.start();
  loop.run_until(loop.now() + 2'000'000'000ull);

  const auto* at_brussels = brussels.best(util::Prefix::parse("203.0.113.0/24"));
  const auto* at_tokyo = tokyo.best(util::Prefix::parse("203.0.113.0/24"));

  std::printf("route at brussels: %s\n", at_brussels ? "present" : "absent");
  if (at_brussels) {
    auto geoloc = hosts::fir::FirCore::get_attr(*at_brussels->attrs, bgp::attr_code::kGeoLoc);
    if (geoloc) {
      auto parsed = bgp::parse_geoloc(*geoloc);
      std::printf("  GeoLoc stamped by extension: lat=%.3f lon=%.3f\n",
                  parsed->lat_microdeg / 1e6, parsed->lon_microdeg / 1e6);
    } else {
      std::printf("  (no GeoLoc attribute!)\n");
    }
  }
  std::printf("route at tokyo:    %s (distance filter, threshold 20 deg)\n",
              at_tokyo ? "present" : "rejected");

  const bool ok = at_brussels != nullptr && at_tokyo == nullptr;
  std::printf("%s\n", ok ? "geoloc example OK" : "geoloc example FAILED");
  return ok ? 0 : 1;
}
