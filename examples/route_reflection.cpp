// Route reflection (paper §3.2): native RFC 4456 vs the extension bytecode,
// on both host implementations, checking behavioural equivalence.
//
// The DUT reflects a small table between two iBGP clients; we verify that
// (a) every prefix arrives downstream, (b) reflected routes carry
// ORIGINATOR_ID and CLUSTER_LIST, and (c) native and extension modes emit
// byte-identical reflection attributes.
//
// Run: ./route_reflection [route_count]

#include <cstdio>
#include <cstdlib>

#include "extensions/route_reflection.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

using namespace xb;

namespace {

struct ReflectResult {
  std::uint64_t prefixes = 0;
  bool originator_ok = false;
  bool cluster_ok = false;
};

template <typename Dut>
ReflectResult run(const harness::Workload& workload, bool use_extension) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename Dut::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.native_route_reflector = !use_extension;
  Dut dut(loop, cfg);
  if (use_extension) dut.load_extensions(ext::route_reflection_manifest());

  harness::Testbed<Dut> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);

  ReflectResult out;
  out.prefixes = bed.sink().prefixes();
  const auto& last = bed.sink().last_update();
  if (const auto* originator = last.attrs.find(bgp::attr_code::kOriginatorId)) {
    out.originator_ok = bgp::parse_originator_id(*originator) == 0x0A000001;  // upstream id
  }
  if (const auto* cluster = last.attrs.find(bgp::attr_code::kClusterList)) {
    const auto list = bgp::parse_cluster_list(*cluster);
    out.cluster_ok = list.size() == 1 && list[0] == 0xC1C1C1C1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t routes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20'000;
  harness::WorkloadParams params;
  params.route_count = routes;
  params.with_local_pref = true;  // iBGP feed
  const auto workload = harness::make_workload(params);

  std::printf("reflecting %zu prefixes through the Fig. 3 testbed\n\n",
              workload.prefix_count);
  std::printf("%-28s %10s %14s %14s\n", "configuration", "prefixes", "ORIGINATOR_ID",
              "CLUSTER_LIST");

  bool all_ok = true;
  const auto report = [&all_ok, &workload](const char* label, const ReflectResult& r) {
    std::printf("%-28s %10llu %14s %14s\n", label, static_cast<unsigned long long>(r.prefixes),
                r.originator_ok ? "ok" : "MISSING", r.cluster_ok ? "ok" : "MISSING");
    all_ok = all_ok && r.prefixes == workload.prefix_count && r.originator_ok && r.cluster_ok;
  };

  report("Fir   native RR", run<hosts::fir::FirRouter>(workload, false));
  report("xFir  extension RR", run<hosts::fir::FirRouter>(workload, true));
  report("Wren  native RR", run<hosts::wren::WrenRouter>(workload, false));
  report("xWren extension RR", run<hosts::wren::WrenRouter>(workload, true));

  std::printf("\n%s\n", all_ok ? "route reflection example OK" : "route reflection FAILED");
  return all_ok ? 0 : 1;
}
