file(REMOVE_RECURSE
  "CMakeFiles/xbgp_manifest_test.dir/xbgp_manifest_test.cpp.o"
  "CMakeFiles/xbgp_manifest_test.dir/xbgp_manifest_test.cpp.o.d"
  "xbgp_manifest_test"
  "xbgp_manifest_test.pdb"
  "xbgp_manifest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgp_manifest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
