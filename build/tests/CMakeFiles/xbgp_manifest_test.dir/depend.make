# Empty dependencies file for xbgp_manifest_test.
# This may be replaced when dependencies are built.
