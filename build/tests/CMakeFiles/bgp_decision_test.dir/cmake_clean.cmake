file(REMOVE_RECURSE
  "CMakeFiles/bgp_decision_test.dir/bgp_decision_test.cpp.o"
  "CMakeFiles/bgp_decision_test.dir/bgp_decision_test.cpp.o.d"
  "bgp_decision_test"
  "bgp_decision_test.pdb"
  "bgp_decision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_decision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
