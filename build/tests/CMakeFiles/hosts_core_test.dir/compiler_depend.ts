# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hosts_core_test.
