file(REMOVE_RECURSE
  "CMakeFiles/hosts_core_test.dir/hosts_core_test.cpp.o"
  "CMakeFiles/hosts_core_test.dir/hosts_core_test.cpp.o.d"
  "hosts_core_test"
  "hosts_core_test.pdb"
  "hosts_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosts_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
