# Empty compiler generated dependencies file for hosts_core_test.
# This may be replaced when dependencies are built.
