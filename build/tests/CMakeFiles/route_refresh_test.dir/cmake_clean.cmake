file(REMOVE_RECURSE
  "CMakeFiles/route_refresh_test.dir/route_refresh_test.cpp.o"
  "CMakeFiles/route_refresh_test.dir/route_refresh_test.cpp.o.d"
  "route_refresh_test"
  "route_refresh_test.pdb"
  "route_refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
