# Empty compiler generated dependencies file for route_refresh_test.
# This may be replaced when dependencies are built.
