# Empty compiler generated dependencies file for scenario_301_test.
# This may be replaced when dependencies are built.
