file(REMOVE_RECURSE
  "CMakeFiles/scenario_301_test.dir/scenario_301_test.cpp.o"
  "CMakeFiles/scenario_301_test.dir/scenario_301_test.cpp.o.d"
  "scenario_301_test"
  "scenario_301_test.pdb"
  "scenario_301_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_301_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
