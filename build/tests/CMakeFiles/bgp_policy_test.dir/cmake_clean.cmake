file(REMOVE_RECURSE
  "CMakeFiles/bgp_policy_test.dir/bgp_policy_test.cpp.o"
  "CMakeFiles/bgp_policy_test.dir/bgp_policy_test.cpp.o.d"
  "bgp_policy_test"
  "bgp_policy_test.pdb"
  "bgp_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
