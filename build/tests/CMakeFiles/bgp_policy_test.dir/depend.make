# Empty dependencies file for bgp_policy_test.
# This may be replaced when dependencies are built.
