# Empty dependencies file for ebpf_conformance_test.
# This may be replaced when dependencies are built.
