file(REMOVE_RECURSE
  "CMakeFiles/ebpf_conformance_test.dir/ebpf_conformance_test.cpp.o"
  "CMakeFiles/ebpf_conformance_test.dir/ebpf_conformance_test.cpp.o.d"
  "ebpf_conformance_test"
  "ebpf_conformance_test.pdb"
  "ebpf_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
