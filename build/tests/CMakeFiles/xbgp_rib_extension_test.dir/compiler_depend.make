# Empty compiler generated dependencies file for xbgp_rib_extension_test.
# This may be replaced when dependencies are built.
