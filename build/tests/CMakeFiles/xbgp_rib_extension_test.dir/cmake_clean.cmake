file(REMOVE_RECURSE
  "CMakeFiles/xbgp_rib_extension_test.dir/xbgp_rib_extension_test.cpp.o"
  "CMakeFiles/xbgp_rib_extension_test.dir/xbgp_rib_extension_test.cpp.o.d"
  "xbgp_rib_extension_test"
  "xbgp_rib_extension_test.pdb"
  "xbgp_rib_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgp_rib_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
