# Empty dependencies file for bgp_session_test.
# This may be replaced when dependencies are built.
