file(REMOVE_RECURSE
  "CMakeFiles/engine_policy_test.dir/engine_policy_test.cpp.o"
  "CMakeFiles/engine_policy_test.dir/engine_policy_test.cpp.o.d"
  "engine_policy_test"
  "engine_policy_test.pdb"
  "engine_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
