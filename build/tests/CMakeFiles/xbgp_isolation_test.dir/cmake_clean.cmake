file(REMOVE_RECURSE
  "CMakeFiles/xbgp_isolation_test.dir/xbgp_isolation_test.cpp.o"
  "CMakeFiles/xbgp_isolation_test.dir/xbgp_isolation_test.cpp.o.d"
  "xbgp_isolation_test"
  "xbgp_isolation_test.pdb"
  "xbgp_isolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgp_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
