# Empty dependencies file for xbgp_isolation_test.
# This may be replaced when dependencies are built.
