file(REMOVE_RECURSE
  "CMakeFiles/ebpf_vm_test.dir/ebpf_vm_test.cpp.o"
  "CMakeFiles/ebpf_vm_test.dir/ebpf_vm_test.cpp.o.d"
  "ebpf_vm_test"
  "ebpf_vm_test.pdb"
  "ebpf_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
