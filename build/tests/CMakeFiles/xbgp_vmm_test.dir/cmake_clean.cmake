file(REMOVE_RECURSE
  "CMakeFiles/xbgp_vmm_test.dir/xbgp_vmm_test.cpp.o"
  "CMakeFiles/xbgp_vmm_test.dir/xbgp_vmm_test.cpp.o.d"
  "xbgp_vmm_test"
  "xbgp_vmm_test.pdb"
  "xbgp_vmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgp_vmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
