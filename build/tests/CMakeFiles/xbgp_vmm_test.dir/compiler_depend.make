# Empty compiler generated dependencies file for xbgp_vmm_test.
# This may be replaced when dependencies are built.
