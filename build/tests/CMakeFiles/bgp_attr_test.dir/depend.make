# Empty dependencies file for bgp_attr_test.
# This may be replaced when dependencies are built.
