file(REMOVE_RECURSE
  "CMakeFiles/bgp_attr_test.dir/bgp_attr_test.cpp.o"
  "CMakeFiles/bgp_attr_test.dir/bgp_attr_test.cpp.o.d"
  "bgp_attr_test"
  "bgp_attr_test.pdb"
  "bgp_attr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_attr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
