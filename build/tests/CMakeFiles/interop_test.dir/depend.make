# Empty dependencies file for interop_test.
# This may be replaced when dependencies are built.
