file(REMOVE_RECURSE
  "CMakeFiles/igp_test.dir/igp_test.cpp.o"
  "CMakeFiles/igp_test.dir/igp_test.cpp.o.d"
  "igp_test"
  "igp_test.pdb"
  "igp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
