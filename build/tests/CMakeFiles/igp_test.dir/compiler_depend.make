# Empty compiler generated dependencies file for igp_test.
# This may be replaced when dependencies are built.
