file(REMOVE_RECURSE
  "CMakeFiles/ebpf_verifier_test.dir/ebpf_verifier_test.cpp.o"
  "CMakeFiles/ebpf_verifier_test.dir/ebpf_verifier_test.cpp.o.d"
  "ebpf_verifier_test"
  "ebpf_verifier_test.pdb"
  "ebpf_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
