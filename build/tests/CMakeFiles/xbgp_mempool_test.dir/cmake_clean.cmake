file(REMOVE_RECURSE
  "CMakeFiles/xbgp_mempool_test.dir/xbgp_mempool_test.cpp.o"
  "CMakeFiles/xbgp_mempool_test.dir/xbgp_mempool_test.cpp.o.d"
  "xbgp_mempool_test"
  "xbgp_mempool_test.pdb"
  "xbgp_mempool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgp_mempool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
