# Empty compiler generated dependencies file for xbgp_mempool_test.
# This may be replaced when dependencies are built.
