file(REMOVE_RECURSE
  "CMakeFiles/ebpf_extra_test.dir/ebpf_extra_test.cpp.o"
  "CMakeFiles/ebpf_extra_test.dir/ebpf_extra_test.cpp.o.d"
  "ebpf_extra_test"
  "ebpf_extra_test.pdb"
  "ebpf_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
