# Empty compiler generated dependencies file for ebpf_extra_test.
# This may be replaced when dependencies are built.
