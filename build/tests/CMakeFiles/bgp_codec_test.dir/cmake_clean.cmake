file(REMOVE_RECURSE
  "CMakeFiles/bgp_codec_test.dir/bgp_codec_test.cpp.o"
  "CMakeFiles/bgp_codec_test.dir/bgp_codec_test.cpp.o.d"
  "bgp_codec_test"
  "bgp_codec_test.pdb"
  "bgp_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
