file(REMOVE_RECURSE
  "CMakeFiles/engine_builder_test.dir/engine_builder_test.cpp.o"
  "CMakeFiles/engine_builder_test.dir/engine_builder_test.cpp.o.d"
  "engine_builder_test"
  "engine_builder_test.pdb"
  "engine_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
