# Empty dependencies file for engine_builder_test.
# This may be replaced when dependencies are built.
