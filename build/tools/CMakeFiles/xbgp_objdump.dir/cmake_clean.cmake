file(REMOVE_RECURSE
  "CMakeFiles/xbgp_objdump.dir/xbgp_objdump.cpp.o"
  "CMakeFiles/xbgp_objdump.dir/xbgp_objdump.cpp.o.d"
  "xbgp_objdump"
  "xbgp_objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgp_objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
