# Empty compiler generated dependencies file for xbgp_objdump.
# This may be replaced when dependencies are built.
