# Empty dependencies file for loc_report.
# This may be replaced when dependencies are built.
