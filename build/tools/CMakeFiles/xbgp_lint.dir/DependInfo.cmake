
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/xbgp_lint.cpp" "tools/CMakeFiles/xbgp_lint.dir/xbgp_lint.cpp.o" "gcc" "tools/CMakeFiles/xbgp_lint.dir/xbgp_lint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extensions/CMakeFiles/xb_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/xb_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/xbgp/CMakeFiles/xb_xbgp.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/xb_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
