file(REMOVE_RECURSE
  "CMakeFiles/xbgp_lint.dir/xbgp_lint.cpp.o"
  "CMakeFiles/xbgp_lint.dir/xbgp_lint.cpp.o.d"
  "xbgp_lint"
  "xbgp_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgp_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
