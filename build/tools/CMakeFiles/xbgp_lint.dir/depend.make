# Empty dependencies file for xbgp_lint.
# This may be replaced when dependencies are built.
