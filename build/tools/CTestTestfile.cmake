# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(loc_report "/root/repo/build/tools/loc_report")
set_tests_properties(loc_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xbgp_lint_shipped "/root/repo/build/tools/xbgp_lint" "-q" "--all")
set_tests_properties(xbgp_lint_shipped PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
