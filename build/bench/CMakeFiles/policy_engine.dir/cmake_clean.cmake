file(REMOVE_RECURSE
  "CMakeFiles/policy_engine.dir/policy_engine.cpp.o"
  "CMakeFiles/policy_engine.dir/policy_engine.cpp.o.d"
  "policy_engine"
  "policy_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
