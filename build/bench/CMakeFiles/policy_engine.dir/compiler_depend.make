# Empty compiler generated dependencies file for policy_engine.
# This may be replaced when dependencies are built.
