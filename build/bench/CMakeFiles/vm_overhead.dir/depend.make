# Empty dependencies file for vm_overhead.
# This may be replaced when dependencies are built.
