file(REMOVE_RECURSE
  "CMakeFiles/vm_overhead.dir/vm_overhead.cpp.o"
  "CMakeFiles/vm_overhead.dir/vm_overhead.cpp.o.d"
  "vm_overhead"
  "vm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
