# Empty compiler generated dependencies file for attr_repr.
# This may be replaced when dependencies are built.
