file(REMOVE_RECURSE
  "CMakeFiles/attr_repr.dir/attr_repr.cpp.o"
  "CMakeFiles/attr_repr.dir/attr_repr.cpp.o.d"
  "attr_repr"
  "attr_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
