# Empty compiler generated dependencies file for fig4_route_reflection.
# This may be replaced when dependencies are built.
