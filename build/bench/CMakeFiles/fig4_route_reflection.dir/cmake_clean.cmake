file(REMOVE_RECURSE
  "CMakeFiles/fig4_route_reflection.dir/fig4_route_reflection.cpp.o"
  "CMakeFiles/fig4_route_reflection.dir/fig4_route_reflection.cpp.o.d"
  "fig4_route_reflection"
  "fig4_route_reflection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_route_reflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
