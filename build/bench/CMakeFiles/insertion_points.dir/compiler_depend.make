# Empty compiler generated dependencies file for insertion_points.
# This may be replaced when dependencies are built.
