file(REMOVE_RECURSE
  "CMakeFiles/insertion_points.dir/insertion_points.cpp.o"
  "CMakeFiles/insertion_points.dir/insertion_points.cpp.o.d"
  "insertion_points"
  "insertion_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insertion_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
