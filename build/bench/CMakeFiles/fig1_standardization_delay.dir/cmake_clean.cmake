file(REMOVE_RECURSE
  "CMakeFiles/fig1_standardization_delay.dir/fig1_standardization_delay.cpp.o"
  "CMakeFiles/fig1_standardization_delay.dir/fig1_standardization_delay.cpp.o.d"
  "fig1_standardization_delay"
  "fig1_standardization_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_standardization_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
