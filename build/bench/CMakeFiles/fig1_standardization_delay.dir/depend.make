# Empty dependencies file for fig1_standardization_delay.
# This may be replaced when dependencies are built.
