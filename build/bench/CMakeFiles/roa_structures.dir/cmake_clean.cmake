file(REMOVE_RECURSE
  "CMakeFiles/roa_structures.dir/roa_structures.cpp.o"
  "CMakeFiles/roa_structures.dir/roa_structures.cpp.o.d"
  "roa_structures"
  "roa_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roa_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
