# Empty dependencies file for roa_structures.
# This may be replaced when dependencies are built.
