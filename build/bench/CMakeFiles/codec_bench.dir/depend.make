# Empty dependencies file for codec_bench.
# This may be replaced when dependencies are built.
