file(REMOVE_RECURSE
  "CMakeFiles/codec_bench.dir/codec_bench.cpp.o"
  "CMakeFiles/codec_bench.dir/codec_bench.cpp.o.d"
  "codec_bench"
  "codec_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
