# Empty dependencies file for rtr_sync.
# This may be replaced when dependencies are built.
