file(REMOVE_RECURSE
  "CMakeFiles/rtr_sync.dir/rtr_sync.cpp.o"
  "CMakeFiles/rtr_sync.dir/rtr_sync.cpp.o.d"
  "rtr_sync"
  "rtr_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
