file(REMOVE_RECURSE
  "CMakeFiles/geoloc.dir/geoloc.cpp.o"
  "CMakeFiles/geoloc.dir/geoloc.cpp.o.d"
  "geoloc"
  "geoloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
