# Empty compiler generated dependencies file for manifest_loader.
# This may be replaced when dependencies are built.
