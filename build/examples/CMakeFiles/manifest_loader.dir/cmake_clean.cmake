file(REMOVE_RECURSE
  "CMakeFiles/manifest_loader.dir/manifest_loader.cpp.o"
  "CMakeFiles/manifest_loader.dir/manifest_loader.cpp.o.d"
  "manifest_loader"
  "manifest_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
