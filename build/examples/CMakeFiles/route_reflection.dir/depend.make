# Empty dependencies file for route_reflection.
# This may be replaced when dependencies are built.
