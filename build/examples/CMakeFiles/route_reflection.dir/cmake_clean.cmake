file(REMOVE_RECURSE
  "CMakeFiles/route_reflection.dir/route_reflection.cpp.o"
  "CMakeFiles/route_reflection.dir/route_reflection.cpp.o.d"
  "route_reflection"
  "route_reflection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_reflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
