# Empty dependencies file for rpki_live.
# This may be replaced when dependencies are built.
