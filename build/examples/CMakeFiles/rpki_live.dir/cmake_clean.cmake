file(REMOVE_RECURSE
  "CMakeFiles/rpki_live.dir/rpki_live.cpp.o"
  "CMakeFiles/rpki_live.dir/rpki_live.cpp.o.d"
  "rpki_live"
  "rpki_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpki_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
