file(REMOVE_RECURSE
  "CMakeFiles/origin_validation.dir/origin_validation.cpp.o"
  "CMakeFiles/origin_validation.dir/origin_validation.cpp.o.d"
  "origin_validation"
  "origin_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origin_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
