# Empty dependencies file for origin_validation.
# This may be replaced when dependencies are built.
