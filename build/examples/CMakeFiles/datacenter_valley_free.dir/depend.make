# Empty dependencies file for datacenter_valley_free.
# This may be replaced when dependencies are built.
