file(REMOVE_RECURSE
  "CMakeFiles/datacenter_valley_free.dir/datacenter_valley_free.cpp.o"
  "CMakeFiles/datacenter_valley_free.dir/datacenter_valley_free.cpp.o.d"
  "datacenter_valley_free"
  "datacenter_valley_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_valley_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
