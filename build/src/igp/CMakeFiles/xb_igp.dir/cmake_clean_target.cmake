file(REMOVE_RECURSE
  "libxb_igp.a"
)
