# Empty compiler generated dependencies file for xb_igp.
# This may be replaced when dependencies are built.
