file(REMOVE_RECURSE
  "CMakeFiles/xb_igp.dir/graph.cpp.o"
  "CMakeFiles/xb_igp.dir/graph.cpp.o.d"
  "CMakeFiles/xb_igp.dir/igp_table.cpp.o"
  "CMakeFiles/xb_igp.dir/igp_table.cpp.o.d"
  "CMakeFiles/xb_igp.dir/spf.cpp.o"
  "CMakeFiles/xb_igp.dir/spf.cpp.o.d"
  "libxb_igp.a"
  "libxb_igp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_igp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
