file(REMOVE_RECURSE
  "CMakeFiles/xb_xbgp.dir/manifest.cpp.o"
  "CMakeFiles/xb_xbgp.dir/manifest.cpp.o.d"
  "CMakeFiles/xb_xbgp.dir/vmm.cpp.o"
  "CMakeFiles/xb_xbgp.dir/vmm.cpp.o.d"
  "libxb_xbgp.a"
  "libxb_xbgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_xbgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
