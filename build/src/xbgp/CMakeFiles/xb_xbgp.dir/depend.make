# Empty dependencies file for xb_xbgp.
# This may be replaced when dependencies are built.
