file(REMOVE_RECURSE
  "libxb_xbgp.a"
)
