file(REMOVE_RECURSE
  "CMakeFiles/xb_net.dir/channel.cpp.o"
  "CMakeFiles/xb_net.dir/channel.cpp.o.d"
  "CMakeFiles/xb_net.dir/event_loop.cpp.o"
  "CMakeFiles/xb_net.dir/event_loop.cpp.o.d"
  "libxb_net.a"
  "libxb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
