# Empty dependencies file for xb_net.
# This may be replaced when dependencies are built.
