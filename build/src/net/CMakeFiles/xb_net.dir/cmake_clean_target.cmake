file(REMOVE_RECURSE
  "libxb_net.a"
)
