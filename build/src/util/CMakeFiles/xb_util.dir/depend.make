# Empty dependencies file for xb_util.
# This may be replaced when dependencies are built.
