file(REMOVE_RECURSE
  "libxb_util.a"
)
