file(REMOVE_RECURSE
  "CMakeFiles/xb_util.dir/ip.cpp.o"
  "CMakeFiles/xb_util.dir/ip.cpp.o.d"
  "CMakeFiles/xb_util.dir/log.cpp.o"
  "CMakeFiles/xb_util.dir/log.cpp.o.d"
  "libxb_util.a"
  "libxb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
