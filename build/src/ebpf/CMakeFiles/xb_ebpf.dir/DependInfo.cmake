
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/analyzer.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/analyzer.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/analyzer.cpp.o.d"
  "/root/repo/src/ebpf/assembler.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/assembler.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/assembler.cpp.o.d"
  "/root/repo/src/ebpf/cfg.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/cfg.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/cfg.cpp.o.d"
  "/root/repo/src/ebpf/disasm.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/disasm.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/disasm.cpp.o.d"
  "/root/repo/src/ebpf/insn.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/insn.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/insn.cpp.o.d"
  "/root/repo/src/ebpf/memory.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/memory.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/memory.cpp.o.d"
  "/root/repo/src/ebpf/verifier.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/verifier.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/verifier.cpp.o.d"
  "/root/repo/src/ebpf/vm.cpp" "src/ebpf/CMakeFiles/xb_ebpf.dir/vm.cpp.o" "gcc" "src/ebpf/CMakeFiles/xb_ebpf.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
