file(REMOVE_RECURSE
  "CMakeFiles/xb_ebpf.dir/analyzer.cpp.o"
  "CMakeFiles/xb_ebpf.dir/analyzer.cpp.o.d"
  "CMakeFiles/xb_ebpf.dir/assembler.cpp.o"
  "CMakeFiles/xb_ebpf.dir/assembler.cpp.o.d"
  "CMakeFiles/xb_ebpf.dir/cfg.cpp.o"
  "CMakeFiles/xb_ebpf.dir/cfg.cpp.o.d"
  "CMakeFiles/xb_ebpf.dir/disasm.cpp.o"
  "CMakeFiles/xb_ebpf.dir/disasm.cpp.o.d"
  "CMakeFiles/xb_ebpf.dir/insn.cpp.o"
  "CMakeFiles/xb_ebpf.dir/insn.cpp.o.d"
  "CMakeFiles/xb_ebpf.dir/memory.cpp.o"
  "CMakeFiles/xb_ebpf.dir/memory.cpp.o.d"
  "CMakeFiles/xb_ebpf.dir/verifier.cpp.o"
  "CMakeFiles/xb_ebpf.dir/verifier.cpp.o.d"
  "CMakeFiles/xb_ebpf.dir/vm.cpp.o"
  "CMakeFiles/xb_ebpf.dir/vm.cpp.o.d"
  "libxb_ebpf.a"
  "libxb_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
