# Empty compiler generated dependencies file for xb_ebpf.
# This may be replaced when dependencies are built.
