file(REMOVE_RECURSE
  "libxb_ebpf.a"
)
