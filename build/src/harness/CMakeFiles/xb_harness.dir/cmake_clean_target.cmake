file(REMOVE_RECURSE
  "libxb_harness.a"
)
