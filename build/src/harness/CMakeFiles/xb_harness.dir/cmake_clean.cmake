file(REMOVE_RECURSE
  "CMakeFiles/xb_harness.dir/rfc_dataset.cpp.o"
  "CMakeFiles/xb_harness.dir/rfc_dataset.cpp.o.d"
  "CMakeFiles/xb_harness.dir/workload.cpp.o"
  "CMakeFiles/xb_harness.dir/workload.cpp.o.d"
  "libxb_harness.a"
  "libxb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
