# Empty dependencies file for xb_harness.
# This may be replaced when dependencies are built.
