file(REMOVE_RECURSE
  "libxb_extensions.a"
)
