file(REMOVE_RECURSE
  "CMakeFiles/xb_extensions.dir/community_tag.cpp.o"
  "CMakeFiles/xb_extensions.dir/community_tag.cpp.o.d"
  "CMakeFiles/xb_extensions.dir/geoloc.cpp.o"
  "CMakeFiles/xb_extensions.dir/geoloc.cpp.o.d"
  "CMakeFiles/xb_extensions.dir/igp_filter.cpp.o"
  "CMakeFiles/xb_extensions.dir/igp_filter.cpp.o.d"
  "CMakeFiles/xb_extensions.dir/origin_validation.cpp.o"
  "CMakeFiles/xb_extensions.dir/origin_validation.cpp.o.d"
  "CMakeFiles/xb_extensions.dir/registry.cpp.o"
  "CMakeFiles/xb_extensions.dir/registry.cpp.o.d"
  "CMakeFiles/xb_extensions.dir/route_reflection.cpp.o"
  "CMakeFiles/xb_extensions.dir/route_reflection.cpp.o.d"
  "CMakeFiles/xb_extensions.dir/valley_free.cpp.o"
  "CMakeFiles/xb_extensions.dir/valley_free.cpp.o.d"
  "libxb_extensions.a"
  "libxb_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
