
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extensions/community_tag.cpp" "src/extensions/CMakeFiles/xb_extensions.dir/community_tag.cpp.o" "gcc" "src/extensions/CMakeFiles/xb_extensions.dir/community_tag.cpp.o.d"
  "/root/repo/src/extensions/geoloc.cpp" "src/extensions/CMakeFiles/xb_extensions.dir/geoloc.cpp.o" "gcc" "src/extensions/CMakeFiles/xb_extensions.dir/geoloc.cpp.o.d"
  "/root/repo/src/extensions/igp_filter.cpp" "src/extensions/CMakeFiles/xb_extensions.dir/igp_filter.cpp.o" "gcc" "src/extensions/CMakeFiles/xb_extensions.dir/igp_filter.cpp.o.d"
  "/root/repo/src/extensions/origin_validation.cpp" "src/extensions/CMakeFiles/xb_extensions.dir/origin_validation.cpp.o" "gcc" "src/extensions/CMakeFiles/xb_extensions.dir/origin_validation.cpp.o.d"
  "/root/repo/src/extensions/registry.cpp" "src/extensions/CMakeFiles/xb_extensions.dir/registry.cpp.o" "gcc" "src/extensions/CMakeFiles/xb_extensions.dir/registry.cpp.o.d"
  "/root/repo/src/extensions/route_reflection.cpp" "src/extensions/CMakeFiles/xb_extensions.dir/route_reflection.cpp.o" "gcc" "src/extensions/CMakeFiles/xb_extensions.dir/route_reflection.cpp.o.d"
  "/root/repo/src/extensions/valley_free.cpp" "src/extensions/CMakeFiles/xb_extensions.dir/valley_free.cpp.o" "gcc" "src/extensions/CMakeFiles/xb_extensions.dir/valley_free.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ebpf/CMakeFiles/xb_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/xbgp/CMakeFiles/xb_xbgp.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/xb_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
