# Empty compiler generated dependencies file for xb_extensions.
# This may be replaced when dependencies are built.
