
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpki/loader.cpp" "src/rpki/CMakeFiles/xb_rpki.dir/loader.cpp.o" "gcc" "src/rpki/CMakeFiles/xb_rpki.dir/loader.cpp.o.d"
  "/root/repo/src/rpki/roa_hash.cpp" "src/rpki/CMakeFiles/xb_rpki.dir/roa_hash.cpp.o" "gcc" "src/rpki/CMakeFiles/xb_rpki.dir/roa_hash.cpp.o.d"
  "/root/repo/src/rpki/roa_lpfst.cpp" "src/rpki/CMakeFiles/xb_rpki.dir/roa_lpfst.cpp.o" "gcc" "src/rpki/CMakeFiles/xb_rpki.dir/roa_lpfst.cpp.o.d"
  "/root/repo/src/rpki/roa_trie.cpp" "src/rpki/CMakeFiles/xb_rpki.dir/roa_trie.cpp.o" "gcc" "src/rpki/CMakeFiles/xb_rpki.dir/roa_trie.cpp.o.d"
  "/root/repo/src/rpki/rtr_pdu.cpp" "src/rpki/CMakeFiles/xb_rpki.dir/rtr_pdu.cpp.o" "gcc" "src/rpki/CMakeFiles/xb_rpki.dir/rtr_pdu.cpp.o.d"
  "/root/repo/src/rpki/rtr_session.cpp" "src/rpki/CMakeFiles/xb_rpki.dir/rtr_session.cpp.o" "gcc" "src/rpki/CMakeFiles/xb_rpki.dir/rtr_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/xb_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
