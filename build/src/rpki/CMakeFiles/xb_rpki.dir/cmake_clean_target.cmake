file(REMOVE_RECURSE
  "libxb_rpki.a"
)
