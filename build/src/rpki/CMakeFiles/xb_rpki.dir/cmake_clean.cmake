file(REMOVE_RECURSE
  "CMakeFiles/xb_rpki.dir/loader.cpp.o"
  "CMakeFiles/xb_rpki.dir/loader.cpp.o.d"
  "CMakeFiles/xb_rpki.dir/roa_hash.cpp.o"
  "CMakeFiles/xb_rpki.dir/roa_hash.cpp.o.d"
  "CMakeFiles/xb_rpki.dir/roa_lpfst.cpp.o"
  "CMakeFiles/xb_rpki.dir/roa_lpfst.cpp.o.d"
  "CMakeFiles/xb_rpki.dir/roa_trie.cpp.o"
  "CMakeFiles/xb_rpki.dir/roa_trie.cpp.o.d"
  "CMakeFiles/xb_rpki.dir/rtr_pdu.cpp.o"
  "CMakeFiles/xb_rpki.dir/rtr_pdu.cpp.o.d"
  "CMakeFiles/xb_rpki.dir/rtr_session.cpp.o"
  "CMakeFiles/xb_rpki.dir/rtr_session.cpp.o.d"
  "libxb_rpki.a"
  "libxb_rpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
