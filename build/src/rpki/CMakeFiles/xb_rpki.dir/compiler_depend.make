# Empty compiler generated dependencies file for xb_rpki.
# This may be replaced when dependencies are built.
