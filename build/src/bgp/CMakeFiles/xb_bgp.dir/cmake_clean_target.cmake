file(REMOVE_RECURSE
  "libxb_bgp.a"
)
