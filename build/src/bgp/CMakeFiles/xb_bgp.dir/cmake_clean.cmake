file(REMOVE_RECURSE
  "CMakeFiles/xb_bgp.dir/aspath.cpp.o"
  "CMakeFiles/xb_bgp.dir/aspath.cpp.o.d"
  "CMakeFiles/xb_bgp.dir/attr.cpp.o"
  "CMakeFiles/xb_bgp.dir/attr.cpp.o.d"
  "CMakeFiles/xb_bgp.dir/codec.cpp.o"
  "CMakeFiles/xb_bgp.dir/codec.cpp.o.d"
  "CMakeFiles/xb_bgp.dir/decision.cpp.o"
  "CMakeFiles/xb_bgp.dir/decision.cpp.o.d"
  "CMakeFiles/xb_bgp.dir/peer_session.cpp.o"
  "CMakeFiles/xb_bgp.dir/peer_session.cpp.o.d"
  "CMakeFiles/xb_bgp.dir/policy.cpp.o"
  "CMakeFiles/xb_bgp.dir/policy.cpp.o.d"
  "libxb_bgp.a"
  "libxb_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
