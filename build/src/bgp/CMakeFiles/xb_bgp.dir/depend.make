# Empty dependencies file for xb_bgp.
# This may be replaced when dependencies are built.
