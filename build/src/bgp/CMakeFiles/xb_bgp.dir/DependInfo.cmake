
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/aspath.cpp" "src/bgp/CMakeFiles/xb_bgp.dir/aspath.cpp.o" "gcc" "src/bgp/CMakeFiles/xb_bgp.dir/aspath.cpp.o.d"
  "/root/repo/src/bgp/attr.cpp" "src/bgp/CMakeFiles/xb_bgp.dir/attr.cpp.o" "gcc" "src/bgp/CMakeFiles/xb_bgp.dir/attr.cpp.o.d"
  "/root/repo/src/bgp/codec.cpp" "src/bgp/CMakeFiles/xb_bgp.dir/codec.cpp.o" "gcc" "src/bgp/CMakeFiles/xb_bgp.dir/codec.cpp.o.d"
  "/root/repo/src/bgp/decision.cpp" "src/bgp/CMakeFiles/xb_bgp.dir/decision.cpp.o" "gcc" "src/bgp/CMakeFiles/xb_bgp.dir/decision.cpp.o.d"
  "/root/repo/src/bgp/peer_session.cpp" "src/bgp/CMakeFiles/xb_bgp.dir/peer_session.cpp.o" "gcc" "src/bgp/CMakeFiles/xb_bgp.dir/peer_session.cpp.o.d"
  "/root/repo/src/bgp/policy.cpp" "src/bgp/CMakeFiles/xb_bgp.dir/policy.cpp.o" "gcc" "src/bgp/CMakeFiles/xb_bgp.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
