# Empty compiler generated dependencies file for xb_hosts.
# This may be replaced when dependencies are built.
