file(REMOVE_RECURSE
  "CMakeFiles/xb_hosts.dir/fir/fir_core.cpp.o"
  "CMakeFiles/xb_hosts.dir/fir/fir_core.cpp.o.d"
  "CMakeFiles/xb_hosts.dir/wren/wren_core.cpp.o"
  "CMakeFiles/xb_hosts.dir/wren/wren_core.cpp.o.d"
  "libxb_hosts.a"
  "libxb_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
