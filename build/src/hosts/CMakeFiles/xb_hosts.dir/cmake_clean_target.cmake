file(REMOVE_RECURSE
  "libxb_hosts.a"
)
